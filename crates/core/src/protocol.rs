//! The DPCP-p locking protocol (Sec. III).
//!
//! This module captures the protocol's *decision logic* — priority
//! ceilings, processor ceilings and the grant rule — as small, reusable
//! pieces. The discrete-event simulator (`dpcp-sim`) and the threaded
//! runtime (`dpcp-runtime`) both drive their queue machinery through these
//! types, so the protocol rules live in exactly one place.
//!
//! # The locking rules (Sec. III-C)
//!
//! When a vertex `v_{i,x}` issues a request `<_{i,q}` for `ℓ_q` at time `t`:
//!
//! 1. **Rule 1** — `ℓ_q` local and locked: `v_{i,x}` suspends into `SQ_i`.
//! 2. **Rule 2** — `ℓ_q` local and free: `v_{i,x}` locks it and joins
//!    `RQ^L_i` (ready, scheduled ahead of `RQ^N_i`).
//! 3. **Rule 3** — `ℓ_q` global on `℘_k`: `v_{i,x}` suspends into `SQ_i`;
//!    the request tries to lock `ℓ_q` under the priority-ceiling test. If
//!    granted it joins `RQ^G_k` (priority order); otherwise it waits in
//!    `SQ^G_k`.
//! 4. **Rule 4** — on completion the request unlocks `ℓ_q`, leaves `RQ^G_k`
//!    (if global) and `v_{i,x}` re-joins `RQ^N_i`.
//!
//! The grant test is the classic DPCP ceiling rule: a request with
//! effective priority `π^H + π_i` is granted at `t` only if it exceeds the
//! processor ceiling `Π^℘_k(t)` — the maximum ceiling among the locked
//! global resources assigned to `℘_k`.

use dpcp_model::{EffectivePriority, Priority, ResourceId, TaskSet};
use serde::{Deserialize, Serialize};

/// The priority ceilings `Π_q` of every resource in a task set, as computed
/// from the *current* priority assignment.
///
/// Only global resources participate in the ceiling mechanism; local
/// resources are accessed by a single task and need no ceiling. Ceilings of
/// unused resources are `None`.
///
/// # Examples
///
/// ```
/// use dpcp_core::protocol::CeilingTable;
/// use dpcp_model::fig1;
///
/// let tasks = fig1::task_set()?;
/// let ceilings = CeilingTable::new(&tasks);
/// // ℓ1 is shared by both tasks: its ceiling is the higher base priority.
/// let top = tasks.tasks().iter().map(|t| t.priority()).max().unwrap();
/// assert_eq!(ceilings.ceiling(fig1::GLOBAL_RESOURCE).map(|c| c.base()), Some(top));
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CeilingTable {
    ceilings: Vec<Option<EffectivePriority>>,
}

impl CeilingTable {
    /// Computes `Π_q = π^H + max_{τ_j ∈ τ(ℓ_q)} π_j` for every resource.
    pub fn new(tasks: &TaskSet) -> Self {
        let ceilings = tasks
            .resources()
            .map(|q| tasks.ceiling(q).map(EffectivePriority::boost))
            .collect();
        CeilingTable { ceilings }
    }

    /// The ceiling of `ℓ_q`, or `None` when no task uses it.
    pub fn ceiling(&self, resource: ResourceId) -> Option<EffectivePriority> {
        self.ceilings.get(resource.index()).copied().flatten()
    }

    /// Number of resources covered.
    pub fn len(&self) -> usize {
        self.ceilings.len()
    }

    /// `true` when the table covers no resources.
    pub fn is_empty(&self) -> bool {
        self.ceilings.is_empty()
    }
}

/// The effective priority `π^E_i = π^H + π_i` of a global-resource request
/// issued by a job with base priority `base`.
#[inline]
pub fn effective_priority(base: Priority) -> EffectivePriority {
    EffectivePriority::boost(base)
}

/// Tracks the processor ceiling `Π^℘_k(t)` of one processor: the maximum
/// priority ceiling among the global resources assigned to `℘_k` that are
/// locked at time `t`.
///
/// The tracker is a multiset because several resources with equal ceilings
/// can be locked simultaneously on one processor.
///
/// # Examples
///
/// ```
/// use dpcp_core::protocol::{effective_priority, ProcessorCeiling};
/// use dpcp_model::{EffectivePriority, Priority};
///
/// let mut pc = ProcessorCeiling::new();
/// let lo = effective_priority(Priority::new(1));
/// let hi = effective_priority(Priority::new(9));
///
/// // Free processor: anything is granted.
/// assert!(pc.admits(lo));
/// pc.lock(lo);
/// // Only requests above the ceiling get in now.
/// assert!(!pc.admits(lo));
/// assert!(pc.admits(hi));
/// pc.unlock(lo);
/// assert!(pc.admits(lo));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessorCeiling {
    /// Locked ceilings, kept sorted ascending; the current processor
    /// ceiling is the last element.
    locked: Vec<EffectivePriority>,
}

impl ProcessorCeiling {
    /// Creates a tracker with no locked resources.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current processor ceiling `Π^℘_k(t)`, or `None` when no global
    /// resource on the processor is locked.
    pub fn current(&self) -> Option<EffectivePriority> {
        self.locked.last().copied()
    }

    /// The DPCP grant test: `π^E > Π^℘_k(t)`, vacuously true when nothing
    /// is locked.
    pub fn admits(&self, request: EffectivePriority) -> bool {
        match self.current() {
            Some(ceiling) => request > ceiling,
            None => true,
        }
    }

    /// Records that a resource with ceiling `c` became locked.
    pub fn lock(&mut self, c: EffectivePriority) {
        let pos = self.locked.partition_point(|&x| x <= c);
        self.locked.insert(pos, c);
    }

    /// Records that a resource with ceiling `c` was unlocked.
    ///
    /// # Panics
    ///
    /// Panics if no resource with ceiling `c` is currently locked — that
    /// would mean the caller's lock bookkeeping is corrupt.
    pub fn unlock(&mut self, c: EffectivePriority) {
        let pos = self
            .locked
            .binary_search(&c)
            .expect("unlock of a ceiling that was never locked");
        self.locked.remove(pos);
    }

    /// Number of currently locked resources on the processor.
    pub fn locked_count(&self) -> usize {
        self.locked.len()
    }
}

/// Outcome of applying the locking rules to a fresh request (what the
/// runtime must do with the requesting vertex and the request itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockDecision {
    /// Rule 2: local resource was free — the vertex holds it and becomes
    /// ready in `RQ^L_i`.
    LocalGranted,
    /// Rule 1: local resource is held — the vertex suspends in `SQ_i`.
    LocalBlocked,
    /// Rule 3, granted: the vertex suspends in `SQ_i`; the agent request is
    /// ready in `RQ^G_k`.
    GlobalGranted,
    /// Rule 3, refused by the ceiling test: the vertex suspends in `SQ_i`;
    /// the request waits in `SQ^G_k`.
    GlobalQueued,
}

/// Applies Rules 1–3 for a request to a **local** resource.
#[inline]
pub fn decide_local(locked_by_other_vertex: bool) -> LockDecision {
    if locked_by_other_vertex {
        LockDecision::LocalBlocked
    } else {
        LockDecision::LocalGranted
    }
}

/// Applies Rule 3's ceiling test for a request to a **global** resource on
/// a processor whose ceiling state is `pc`.
///
/// `resource_locked` is whether `ℓ_q` itself is already held; even when the
/// ceiling test passes, a held resource cannot be re-granted.
#[inline]
pub fn decide_global(
    pc: &ProcessorCeiling,
    resource_locked: bool,
    request: EffectivePriority,
) -> LockDecision {
    if !resource_locked && pc.admits(request) {
        LockDecision::GlobalGranted
    } else {
        LockDecision::GlobalQueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcp_model::fig1;

    #[test]
    fn ceiling_table_from_fig1() {
        let ts = fig1::task_set().unwrap();
        let table = CeilingTable::new(&ts);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        // Global ℓ1's ceiling is the max priority of its two users.
        let expected = ts.tasks().iter().map(|t| t.priority()).max().unwrap();
        assert_eq!(
            table.ceiling(fig1::GLOBAL_RESOURCE),
            Some(EffectivePriority::boost(expected))
        );
        // ℓ2 is used only by τ_i; ceilings exist for any used resource.
        assert!(table.ceiling(fig1::LOCAL_RESOURCE).is_some());
    }

    #[test]
    fn ceiling_of_unused_resource_is_none() {
        let ts = fig1::task_set().unwrap();
        let table = CeilingTable::new(&ts);
        assert_eq!(table.ceiling(ResourceId::new(99)), None);
    }

    #[test]
    fn processor_ceiling_is_max_of_locked() {
        let mut pc = ProcessorCeiling::new();
        let c = |p: u32| effective_priority(Priority::new(p));
        assert_eq!(pc.current(), None);
        pc.lock(c(3));
        pc.lock(c(7));
        pc.lock(c(5));
        assert_eq!(pc.current(), Some(c(7)));
        assert_eq!(pc.locked_count(), 3);
        pc.unlock(c(7));
        assert_eq!(pc.current(), Some(c(5)));
        pc.unlock(c(3));
        pc.unlock(c(5));
        assert_eq!(pc.current(), None);
    }

    #[test]
    fn duplicate_ceilings_are_tracked_as_multiset() {
        let mut pc = ProcessorCeiling::new();
        let c = effective_priority(Priority::new(4));
        pc.lock(c);
        pc.lock(c);
        pc.unlock(c);
        // One instance remains locked.
        assert_eq!(pc.current(), Some(c));
        pc.unlock(c);
        assert_eq!(pc.current(), None);
    }

    #[test]
    #[should_panic(expected = "never locked")]
    fn unlock_without_lock_panics() {
        let mut pc = ProcessorCeiling::new();
        pc.unlock(effective_priority(Priority::new(1)));
    }

    #[test]
    fn grant_test_is_strict() {
        let mut pc = ProcessorCeiling::new();
        let four = effective_priority(Priority::new(4));
        let five = effective_priority(Priority::new(5));
        pc.lock(four);
        // Equal priority is refused — strict exceedance required.
        assert!(!pc.admits(four));
        assert!(pc.admits(five));
    }

    #[test]
    fn local_decisions() {
        assert_eq!(decide_local(false), LockDecision::LocalGranted);
        assert_eq!(decide_local(true), LockDecision::LocalBlocked);
    }

    #[test]
    fn global_decision_respects_both_lock_and_ceiling() {
        let mut pc = ProcessorCeiling::new();
        let lo = effective_priority(Priority::new(1));
        let hi = effective_priority(Priority::new(8));
        // Free processor, free resource.
        assert_eq!(decide_global(&pc, false, lo), LockDecision::GlobalGranted);
        // Resource itself held: queued even though ceiling admits.
        assert_eq!(decide_global(&pc, true, hi), LockDecision::GlobalQueued);
        // Ceiling refuses a low-priority request.
        pc.lock(hi);
        assert_eq!(decide_global(&pc, false, lo), LockDecision::GlobalQueued);
        // Ceiling admits a strictly higher request to another free resource.
        let top = effective_priority(Priority::new(9));
        assert_eq!(decide_global(&pc, false, top), LockDecision::GlobalGranted);
    }

    /// The scenario from Lemma 1's proof: once a request `<_{i,q}` is
    /// pending (its ceiling-raising lower-priority blocker holds a resource
    /// with ceiling ≥ π^H + π_i), no *second* lower-priority request can be
    /// granted on the processor.
    #[test]
    fn lemma1_no_second_lower_priority_grant() {
        let mut pc = ProcessorCeiling::new();
        let pi_i = Priority::new(5);
        let pi_a = Priority::new(2); // lower-priority blocker A
        let pi_b = Priority::new(3); // lower-priority would-be blocker B

        // A holds ℓ_u whose ceiling is ≥ π^H + π_i (τ_i uses ℓ_u too).
        let ceiling_u = effective_priority(pi_i);
        pc.lock(ceiling_u);

        // <_{i,q} arrives and is refused (processor ceiling = π^H + π_i,
        // request priority π^H + π_i is not strictly greater).
        assert!(!pc.admits(effective_priority(pi_i)));

        // While A is still in, B (π_b < π_i) can never pass the ceiling.
        assert!(!pc.admits(effective_priority(pi_b)));
        assert!(!pc.admits(effective_priority(pi_a)));

        // Only after A unlocks can anyone else get in — and then the
        // highest-priority pending request (τ_i's) wins by queue order.
        pc.unlock(ceiling_u);
        assert!(pc.admits(effective_priority(pi_i)));
    }

    use dpcp_model::ResourceId;
}
