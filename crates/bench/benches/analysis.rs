//! Analysis and partitioning throughput, one group per reproduced
//! table/figure workload:
//!
//! - `fig2_point` — the full five-method evaluation of one Fig. 2 sample
//!   (the unit of work behind every point of every panel),
//! - `tables_scenario_cell` — the EP/EN pair on a Table 2/3 grid cell,
//! - `components` — the individual analysis stages (path enumeration,
//!   context construction, per-variant WCRT, Algorithm 2 placement),
//! - `wcrt_signature` — one Theorem 1 evaluation, with and without the
//!   shared request-bound memo (`EvalScratch`),
//! - `harness_point` — a full `evaluate_point` fan-out, sequential vs
//!   the ambient rayon pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpcp_baselines::{Lpp, SpinSon};
use dpcp_bench::panel_task_set;
use dpcp_core::analysis::wcrt::{
    wcrt_for_signature, wcrt_for_signature_direct, wcrt_for_signature_with,
    wcrt_over_signatures_batched, wcrt_over_signatures_direct, wcrt_over_signatures_with,
};
use dpcp_core::analysis::{AnalysisContext, EvalScratch, SignatureCache};
use dpcp_core::partition::{assign_resources, ResourceHeuristic};
use dpcp_core::{AnalysisConfig, AnalysisSession, SchedAnalyzer};
use dpcp_experiments::{evaluate_point, standard_registry, EvalConfig};
use dpcp_gen::scenario::{Fig2Panel, Scenario};
use dpcp_model::{
    enumerate_signatures_capped, enumerate_signatures_dp_capped, initial_processors, Platform,
};
use std::hint::black_box;

fn bench_fig2_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_point");
    group.sample_size(10);
    for (panel, m) in [(Fig2Panel::A, 16usize), (Fig2Panel::B, 32)] {
        let utilization = 0.5 * m as f64;
        let tasks = panel_task_set(panel, utilization, 99);
        let platform = Platform::new(m).unwrap();
        group.bench_with_input(
            BenchmarkId::new("all_methods", format!("{panel}")),
            &tasks,
            |b, tasks| {
                let registry = standard_registry();
                b.iter(|| {
                    let wfd = ResourceHeuristic::WorstFitDecreasing;
                    let mut session = AnalysisSession::new(AnalysisConfig::ep());
                    let mut accepted = 0u32;
                    for protocol in registry.iter() {
                        accepted += u32::from(
                            session
                                .run(protocol, tasks, &platform, wfd)
                                .is_schedulable(),
                        );
                    }
                    black_box(accepted)
                })
            },
        );
    }
    group.finish();
}

fn bench_tables_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_scenario_cell");
    group.sample_size(10);
    let tasks = panel_task_set(Fig2Panel::A, 8.0, 7);
    let platform = Platform::new(16).unwrap();
    group.bench_function("ep_vs_en", |b| {
        b.iter(|| {
            let wfd = ResourceHeuristic::WorstFitDecreasing;
            let a = AnalysisSession::new(AnalysisConfig::ep())
                .partition_and_analyze(&tasks, &platform, wfd)
                .is_schedulable();
            let b2 = AnalysisSession::new(AnalysisConfig::en())
                .partition_and_analyze(&tasks, &platform, wfd)
                .is_schedulable();
            black_box((a, b2))
        })
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    let tasks = panel_task_set(Fig2Panel::A, 8.0, 13);
    let platform = Platform::new(16).unwrap();
    let sizes: Vec<usize> = tasks.iter().map(initial_processors).collect();
    let layout = dpcp_core::partition::layout_clusters(&sizes, 16).expect("fits");
    let homes =
        assign_resources(&tasks, &layout, ResourceHeuristic::WorstFitDecreasing).expect("fits");
    let partition =
        dpcp_model::Partition::new(&tasks, &platform, layout.clone(), homes).expect("valid");

    group.bench_function("path_enumeration", |b| {
        b.iter(|| black_box(SignatureCache::new(&tasks, &AnalysisConfig::ep())))
    });
    // The DFS-vs-DP enumerator pair (plus the opt-in dominance-pruned DP),
    // per task set under the default caps.
    let cfg = AnalysisConfig::ep();
    group.bench_function("enumerate_dfs", |b| {
        b.iter(|| {
            for t in tasks.iter() {
                black_box(enumerate_signatures_capped(
                    t,
                    cfg.path_signature_cap,
                    cfg.path_visit_cap,
                ));
            }
        })
    });
    group.bench_function("enumerate_dp", |b| {
        b.iter(|| {
            for t in tasks.iter() {
                black_box(enumerate_signatures_dp_capped(
                    t,
                    cfg.path_signature_cap,
                    cfg.path_visit_cap,
                    false,
                ));
            }
        })
    });
    group.bench_function("enumerate_dp_pruned", |b| {
        b.iter(|| {
            for t in tasks.iter() {
                black_box(enumerate_signatures_dp_capped(
                    t,
                    cfg.path_signature_cap,
                    cfg.path_visit_cap,
                    true,
                ));
            }
        })
    });
    group.bench_function("wcrt_ep", |b| {
        b.iter(|| black_box(AnalysisSession::new(AnalysisConfig::ep()).analyze(&tasks, &partition)))
    });
    group.bench_function("wcrt_en", |b| {
        b.iter(|| black_box(AnalysisSession::new(AnalysisConfig::en()).analyze(&tasks, &partition)))
    });
    group.bench_function("wfd_placement", |b| {
        b.iter(|| {
            black_box(assign_resources(
                &tasks,
                &layout,
                ResourceHeuristic::WorstFitDecreasing,
            ))
        })
    });
    group.bench_function("spin_analysis", |b| {
        let spin = SpinSon::new();
        b.iter(|| black_box(spin.analyze(&tasks, &partition)))
    });
    group.bench_function("lpp_analysis", |b| {
        let lpp = Lpp::new();
        b.iter(|| black_box(lpp.analyze(&tasks, &partition)))
    });
    group.finish();
}

fn bench_wcrt_signature(c: &mut Criterion) {
    let mut group = c.benchmark_group("wcrt_signature");
    let tasks = panel_task_set(Fig2Panel::A, 8.0, 13);
    let platform = Platform::new(16).unwrap();
    let sizes: Vec<usize> = tasks.iter().map(initial_processors).collect();
    let layout = dpcp_core::partition::layout_clusters(&sizes, 16).expect("fits");
    let homes =
        assign_resources(&tasks, &layout, ResourceHeuristic::WorstFitDecreasing).expect("fits");
    let partition = dpcp_model::Partition::new(&tasks, &platform, layout, homes).expect("valid");
    let ctx = AnalysisContext::new(&tasks, &partition);
    let cfg = AnalysisConfig::ep();
    let cache = SignatureCache::new(&tasks, &cfg);

    // The busiest task: most enumerated signatures.
    let busiest = tasks
        .iter()
        .map(|t| t.id())
        .max_by_key(|&i| cache.signatures(i).signatures.len())
        .expect("non-empty task set");
    let sigs = cache.signatures(busiest);
    let longest = &sigs.signatures[0];

    group.bench_function("single_uncached", |b| {
        b.iter(|| black_box(wcrt_for_signature(&ctx, busiest, longest, &cfg)))
    });
    group.bench_function(
        BenchmarkId::new("task_all_signatures_memoized", sigs.signatures.len()),
        |b| {
            let mut scratch = EvalScratch::new();
            b.iter(|| {
                black_box(wcrt_over_signatures_with(
                    &ctx,
                    busiest,
                    sigs,
                    &cfg,
                    &mut scratch,
                ))
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("task_all_signatures_batched", sigs.signatures.len()),
        |b| {
            let mut scratch = EvalScratch::new();
            b.iter(|| {
                black_box(wcrt_over_signatures_batched(
                    &ctx,
                    busiest,
                    sigs,
                    &cfg,
                    &mut scratch,
                ))
            })
        },
    );
    group.finish();

    // The incremental fixed-point engine vs the per-iterate scan
    // reference. Alternating two signatures keeps the warm-start memo from
    // short-circuiting the tabled side into a pure memo-hit measurement.
    let mut group = c.benchmark_group("fixed_point");
    let second = sigs.signatures.get(1).unwrap_or(longest);
    group.bench_function("signature_direct_scan", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let sig = if flip { longest } else { second };
            black_box(wcrt_for_signature_direct(&ctx, busiest, sig, &cfg))
        })
    });
    group.bench_function("signature_prefix_tables", |b| {
        let mut scratch = EvalScratch::new();
        scratch.reset_for_task();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let sig = if flip { longest } else { second };
            black_box(wcrt_for_signature_with(
                &ctx,
                busiest,
                sig,
                &cfg,
                &mut scratch,
            ))
        })
    });
    group.bench_function(
        BenchmarkId::new("task_direct_scan", sigs.signatures.len()),
        |b| b.iter(|| black_box(wcrt_over_signatures_direct(&ctx, busiest, sigs, &cfg))),
    );
    // The lockstep kernel over the same frontier — groups identical
    // recurrences and retires converged orbits in place.
    group.bench_function(
        BenchmarkId::new("task_batched", sigs.signatures.len()),
        |b| {
            let mut scratch = EvalScratch::new();
            b.iter(|| {
                black_box(wcrt_over_signatures_batched(
                    &ctx,
                    busiest,
                    sigs,
                    &cfg,
                    &mut scratch,
                ))
            })
        },
    );
    group.finish();
}

fn bench_harness_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_point");
    group.sample_size(10);
    let scenario = Scenario::fig2(Fig2Panel::A);
    let mut cfg = EvalConfig {
        samples_per_point: 16,
        seed: 2020,
        ..EvalConfig::default()
    };
    group.bench_function("sequential", |b| {
        cfg.threads = 1;
        b.iter(|| black_box(evaluate_point(&scenario, 8.0, 0, &cfg)))
    });
    group.bench_function("parallel_ambient", |b| {
        cfg.threads = 0;
        b.iter(|| black_box(evaluate_point(&scenario, 8.0, 0, &cfg)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2_point,
    bench_tables_cell,
    bench_components,
    bench_wcrt_signature,
    bench_harness_point
);
criterion_main!(benches);
