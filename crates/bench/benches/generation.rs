//! Workload-synthesis throughput: RandFixedSum, DAG generation, and the
//! full Sec. VII-A task-set pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpcp_gen::scenario::{Fig2Panel, Scenario};
use dpcp_gen::{erdos_renyi_dag, rand_fixed_sum};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fixed_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("rand_fixed_sum");
    for n in [4usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(rand_fixed_sum(n, 1.6 * n as f64, 1.0, 3.0, &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("erdos_renyi_dag");
    for n in [10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| black_box(erdos_renyi_dag(n, 0.1, &mut rng)))
        });
    }
    group.finish();
}

fn bench_task_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_set_pipeline");
    group.sample_size(20);
    let scenario = Scenario::fig2(Fig2Panel::A);
    group.bench_function("fig2a_u8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(scenario.sample_task_set(8.0, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fixed_sum, bench_dag, bench_task_set);
criterion_main!(benches);
