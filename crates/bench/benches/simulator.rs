//! Discrete-event simulator throughput: events per second on the Fig. 1
//! example and on a generated Fig. 2(a) workload.

use criterion::{criterion_group, criterion_main, Criterion};
use dpcp_bench::panel_task_set;
use dpcp_core::partition::{assign_resources, layout_clusters, ResourceHeuristic};
use dpcp_gen::scenario::Fig2Panel;
use dpcp_model::{fig1, initial_processors, Partition, Platform, Time};
use dpcp_sim::{simulate, SimConfig};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let (_, partition, tasks) = fig1::platform_and_partition().unwrap();
    let cfg = SimConfig {
        duration: fig1::unit() * 3000,
        ..SimConfig::default()
    };
    c.bench_function("sim_fig1_100_hyperperiods", |b| {
        b.iter(|| black_box(simulate(&tasks, &partition, &cfg)))
    });
}

fn bench_generated(c: &mut Criterion) {
    // Build the placement directly (initial federated sizes + WFD); the
    // simulator's throughput does not depend on analytical schedulability.
    let tasks = panel_task_set(Fig2Panel::A, 6.0, 21);
    let platform = Platform::new(16).unwrap();
    let sizes: Vec<usize> = tasks.iter().map(initial_processors).collect();
    let layout = layout_clusters(&sizes, 16).expect("initial sizes fit on 16 cores");
    let homes = assign_resources(&tasks, &layout, ResourceHeuristic::WorstFitDecreasing)
        .expect("panel-A resources fit");
    let partition = Partition::new(&tasks, &platform, layout, homes).expect("valid");
    let cfg = SimConfig {
        duration: Time::from_ms(500),
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("sim_generated");
    group.sample_size(10);
    group.bench_function("fig2a_500ms", |b| {
        b.iter(|| black_box(simulate(&tasks, &partition, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_generated);
criterion_main!(benches);
