//! Generates `BENCH_analysis.json`: the perf trajectory of the analysis
//! hot path and the experiment harness, tracked from PR 1 on.
//!
//! ```text
//! cargo run -p dpcp_bench --release --bin bench_report -- \
//!     [--samples N] [--repeats R] [--out PATH]
//! ```
//!
//! The report has two halves:
//!
//! - `components` — median ns/op of the analysis stages (one Theorem 1
//!   signature evaluation with and without the request-bound memo, full
//!   task-set analysis under EP/EN, path enumeration), measured through
//!   the same machinery as `cargo bench`;
//! - `harness` — wall-clock of one Fig. 2 utilization point through
//!   `evaluate_point`, sequential (`threads = 1`) vs the ambient rayon
//!   pool, including the per-method acceptance ratios of both runs so the
//!   determinism claim (bit-identical results for any worker count) is
//!   recorded alongside the speedup.

use std::path::PathBuf;
use std::time::Instant;

use criterion::{black_box, Criterion};
use dpcp_bench::panel_task_set;
use dpcp_core::analysis::wcrt::{
    wcrt_for_signature, wcrt_over_signatures, wcrt_over_signatures_with,
};
use dpcp_core::analysis::{analyze, AnalysisContext, EvalScratch, SignatureCache};
use dpcp_core::partition::{assign_resources, layout_clusters, ResourceHeuristic};
use dpcp_core::AnalysisConfig;
use dpcp_experiments::{evaluate_point, EvalConfig, Method, PointResult};
use dpcp_gen::scenario::{Fig2Panel, Scenario};
use dpcp_model::{initial_processors, Partition, Platform};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ComponentBench {
    name: String,
    median_ns: f64,
    iters_per_sample: u64,
    samples: usize,
}

#[derive(Debug, Serialize)]
struct HarnessComparison {
    scenario: String,
    total_utilization: f64,
    samples_per_point: usize,
    repeats: usize,
    threads_sequential: usize,
    threads_parallel: usize,
    sequential_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    methods: Vec<String>,
    acceptance_ratios_sequential: Vec<f64>,
    acceptance_ratios_parallel: Vec<f64>,
    ratios_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    schema_version: u32,
    host_cores: usize,
    components: Vec<ComponentBench>,
    harness: HarnessComparison,
}

struct Args {
    samples: usize,
    repeats: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 16,
        repeats: 5,
        out: PathBuf::from("BENCH_analysis.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--samples" => {
                args.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples needs a positive integer");
            }
            "--repeats" => {
                args.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats needs a positive integer");
            }
            "--out" => {
                args.out = PathBuf::from(it.next().expect("--out needs a path"));
            }
            other => panic!("unknown flag '{other}' (try --samples/--repeats/--out)"),
        }
    }
    args
}

fn component_benches() -> Vec<ComponentBench> {
    let tasks = panel_task_set(Fig2Panel::A, 8.0, 13);
    let platform = Platform::new(16).expect("16-core platform");
    let sizes: Vec<usize> = tasks.iter().map(initial_processors).collect();
    let layout = layout_clusters(&sizes, 16).expect("initial sizes fit");
    let homes =
        assign_resources(&tasks, &layout, ResourceHeuristic::WorstFitDecreasing).expect("fits");
    let partition = Partition::new(&tasks, &platform, layout, homes).expect("valid");
    let ctx = AnalysisContext::new(&tasks, &partition);
    let cfg = AnalysisConfig::ep();
    let cache = SignatureCache::new(&tasks, &cfg);
    let busiest = tasks
        .iter()
        .map(|t| t.id())
        .max_by_key(|&i| cache.signatures(i).signatures.len())
        .expect("non-empty task set");
    let sigs = cache.signatures(busiest);
    let longest = &sigs.signatures[0];

    let mut criterion = Criterion::default().sample_size(15);
    criterion.bench_function("wcrt_for_signature/single_uncached", |b| {
        b.iter(|| black_box(wcrt_for_signature(&ctx, busiest, longest, &cfg)))
    });
    criterion.bench_function("wcrt_over_signatures/task_uncached", |b| {
        b.iter(|| black_box(wcrt_over_signatures(&ctx, busiest, sigs, &cfg)))
    });
    criterion.bench_function("wcrt_over_signatures/task_memoized", |b| {
        let mut scratch = EvalScratch::new();
        b.iter(|| {
            black_box(wcrt_over_signatures_with(
                &ctx,
                busiest,
                sigs,
                &cfg,
                &mut scratch,
            ))
        })
    });
    criterion.bench_function("analyze/task_set_ep", |b| {
        b.iter(|| black_box(analyze(&tasks, &partition, &AnalysisConfig::ep())))
    });
    criterion.bench_function("analyze/task_set_en", |b| {
        b.iter(|| black_box(analyze(&tasks, &partition, &AnalysisConfig::en())))
    });
    criterion.bench_function("signature_cache/enumerate", |b| {
        b.iter(|| black_box(SignatureCache::new(&tasks, &cfg)))
    });

    criterion
        .results()
        .iter()
        .map(|r| ComponentBench {
            name: r.id.clone(),
            median_ns: r.median_ns,
            iters_per_sample: r.iters_per_sample,
            samples: r.samples,
        })
        .collect()
}

/// Median wall-clock milliseconds of `repeats` runs of `f` (after one
/// warmup run), plus the result of the last run for ratio comparison.
fn median_point_ms(repeats: usize, mut f: impl FnMut() -> PointResult) -> (f64, PointResult) {
    let warmup = f();
    let mut times: Vec<f64> = Vec::with_capacity(repeats);
    let mut last = warmup;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        last = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    (times[times.len() / 2], last)
}

fn harness_comparison(samples: usize, repeats: usize) -> HarnessComparison {
    let scenario = Scenario::fig2(Fig2Panel::A);
    let utilization = 8.0; // U/m = 0.5, the contested middle of Fig. 2(a).
    let mut cfg = EvalConfig {
        samples_per_point: samples,
        seed: 2020,
        ..EvalConfig::default()
    };

    cfg.threads = 1;
    let (sequential_ms, seq_point) =
        median_point_ms(repeats, || evaluate_point(&scenario, utilization, 0, &cfg));

    cfg.threads = 0;
    let threads_parallel = cfg.effective_threads();
    let (parallel_ms, par_point) =
        median_point_ms(repeats, || evaluate_point(&scenario, utilization, 0, &cfg));

    let ratios =
        |p: &PointResult| -> Vec<f64> { Method::ALL.iter().map(|&m| p.ratio(m)).collect() };
    HarnessComparison {
        scenario: "fig2_panel_a".to_string(),
        total_utilization: utilization,
        samples_per_point: samples,
        repeats,
        threads_sequential: 1,
        threads_parallel,
        sequential_ms,
        parallel_ms,
        speedup: sequential_ms / parallel_ms.max(f64::MIN_POSITIVE),
        methods: Method::ALL.iter().map(|m| m.name().to_string()).collect(),
        acceptance_ratios_sequential: ratios(&seq_point),
        acceptance_ratios_parallel: ratios(&par_point),
        ratios_identical: seq_point == par_point,
    }
}

fn main() {
    let args = parse_args();
    println!("== component benches ==");
    let components = component_benches();
    println!("\n== harness point: sequential vs parallel ==");
    let harness = harness_comparison(args.samples, args.repeats);
    println!(
        "sequential: {:.1} ms | parallel ({} threads): {:.1} ms | speedup: {:.2}x | identical: {}",
        harness.sequential_ms,
        harness.threads_parallel,
        harness.parallel_ms,
        harness.speedup,
        harness.ratios_identical
    );
    assert!(
        harness.ratios_identical,
        "parallel run must reproduce the sequential acceptance ratios exactly"
    );

    let report = Report {
        schema_version: 1,
        host_cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        components,
        harness,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").expect("cannot write report");
    println!("wrote {}", args.out.display());
}
