//! Generates `BENCH_analysis.json`: the perf trajectory of the analysis
//! hot path and the experiment harness, tracked from PR 1 on.
//!
//! ```text
//! cargo run -p dpcp_bench --release --bin bench_report -- \
//!     [--quick] [--samples N] [--repeats R] [--out PATH] \
//!     [--check-against PATH] [--tolerance X]
//! ```
//!
//! The report has two halves:
//!
//! - `components` — median ns/op of the analysis stages (one Theorem 1
//!   signature evaluation with and without the request-bound memo, the
//!   `fixed_point/*` pair contrasting the per-iterate scan with the
//!   prefix-table solver, full task-set analysis under EP/EN, path
//!   enumeration — the cache plus the `enumerate/*` triple contrasting the
//!   DFS reference, the signature-domain DP and the dominance-pruned DP —
//!   and the `placement/*` search-engine trio: the warm per-probe cost,
//!   the seeded wrapper run and the budgeted probing loop),
//!   measured through the same machinery as `cargo bench`;
//! - `harness` — wall-clock of one Fig. 2 utilization point through
//!   `evaluate_point`, sequential (`threads = 1`) vs the ambient rayon
//!   pool, including the per-method acceptance ratios of both runs so the
//!   determinism claim (bit-identical results for any worker count) is
//!   recorded alongside the speedup;
//! - `serve` — the admission-control service under the seeded
//!   duplicate-heavy `serve-loadgen` workload (self-hosted, in-process):
//!   p50/p99 end-to-end latency, verdicts/sec, the hit/miss split and the
//!   cache short-circuit speedup, plus the byte-identity check between
//!   cached and cold verdicts.
//!
//! The process exits non-zero when the parallel run fails to reproduce
//! the sequential acceptance ratios, when the serve workload errors or
//! breaks byte-identity, or — with `--check-against` — when any component
//! median regresses beyond the tolerance factor against a committed
//! baseline report. Serve latencies are recorded but not regression-gated
//! (single-core CI runners make them too noisy for a hard gate).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use criterion::{black_box, Criterion};
use dpcp_bench::panel_task_set;
use dpcp_core::analysis::wcrt::{
    wcrt_for_signature, wcrt_for_signature_direct, wcrt_for_signature_with, wcrt_over_signatures,
    wcrt_over_signatures_batched, wcrt_over_signatures_direct, wcrt_over_signatures_with,
};
use dpcp_core::analysis::{AnalysisContext, EvalScratch, SignatureCache};
use dpcp_core::partition::{assign_resources, layout_clusters, ResourceHeuristic};
use dpcp_core::{AnalysisConfig, AnalysisSession, DpcpProtocol, PlacementSearch, SearchConfig};
use dpcp_experiments::{evaluate_point, EvalConfig, Method, PointResult};
use dpcp_gen::scenario::{Fig2Panel, Scenario};
use dpcp_model::{
    enumerate_signatures_capped, enumerate_signatures_dp_capped, initial_processors, Partition,
    Platform,
};
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct ComponentBench {
    name: String,
    median_ns: f64,
    iters_per_sample: u64,
    samples: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct HarnessComparison {
    scenario: String,
    total_utilization: f64,
    samples_per_point: usize,
    repeats: usize,
    threads_sequential: usize,
    threads_parallel: usize,
    sequential_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    /// The host's core count, recorded next to the speedup it frames: a
    /// rayon fan-out cannot beat the sequential run without cores to
    /// fan out to.
    host_cores: usize,
    /// `true` when `speedup < 1` on a single-core host — scheduling
    /// overhead with no parallelism available, not a regression. A sub-1
    /// speedup *with* cores available stays unflagged (and suspicious).
    expected_on_single_core: bool,
    methods: Vec<String>,
    acceptance_ratios_sequential: Vec<f64>,
    acceptance_ratios_parallel: Vec<f64>,
    ratios_identical: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema_version: u32,
    host_cores: usize,
    components: Vec<ComponentBench>,
    harness: HarnessComparison,
    /// `Option` so reports predating the serve section still parse as
    /// `--check-against` baselines.
    serve: Option<ServeSection>,
}

#[derive(Debug, Serialize, Deserialize)]
struct ServeSection {
    workload: dpcp_serve::LoadgenConfig,
    report: dpcp_serve::LoadReport,
}

struct Args {
    samples: usize,
    repeats: usize,
    sample_size: usize,
    quick: bool,
    out: PathBuf,
    check_against: Option<PathBuf>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 16,
        repeats: 5,
        sample_size: 15,
        quick: false,
        out: PathBuf::from("BENCH_analysis.json"),
        check_against: None,
        tolerance: 2.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => {
                // CI mode: fewer harness samples/repeats and smaller
                // criterion sample counts. Medians stay comparable (the
                // regression gate uses a generous tolerance).
                args.samples = 8;
                args.repeats = 3;
                args.sample_size = 10;
                args.quick = true;
            }
            "--samples" => {
                args.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples needs a positive integer");
            }
            "--repeats" => {
                args.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats needs a positive integer");
            }
            "--out" => {
                args.out = PathBuf::from(it.next().expect("--out needs a path"));
            }
            "--check-against" => {
                args.check_against = Some(PathBuf::from(
                    it.next().expect("--check-against needs a path"),
                ));
            }
            "--tolerance" => {
                args.tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a factor > 1.0");
            }
            other => panic!(
                "unknown flag '{other}' \
                 (try --quick/--samples/--repeats/--out/--check-against/--tolerance)"
            ),
        }
    }
    args
}

fn component_benches(sample_size: usize) -> Vec<ComponentBench> {
    let tasks = panel_task_set(Fig2Panel::A, 8.0, 13);
    let platform = Platform::new(16).expect("16-core platform");
    let sizes: Vec<usize> = tasks.iter().map(initial_processors).collect();
    let layout = layout_clusters(&sizes, 16).expect("initial sizes fit");
    let homes =
        assign_resources(&tasks, &layout, ResourceHeuristic::WorstFitDecreasing).expect("fits");
    let partition = Partition::new(&tasks, &platform, layout, homes).expect("valid");
    let ctx = AnalysisContext::new(&tasks, &partition);
    let cfg = AnalysisConfig::ep();
    let cache = SignatureCache::new(&tasks, &cfg);
    let busiest = tasks
        .iter()
        .map(|t| t.id())
        .max_by_key(|&i| cache.signatures(i).signatures.len())
        .expect("non-empty task set");
    let sigs = cache.signatures(busiest);
    let longest = &sigs.signatures[0];

    let mut criterion = Criterion::default().sample_size(sample_size);
    criterion.bench_function("wcrt_for_signature/single_uncached", |b| {
        b.iter(|| black_box(wcrt_for_signature(&ctx, busiest, longest, &cfg)))
    });
    criterion.bench_function("wcrt_over_signatures/task_uncached", |b| {
        b.iter(|| black_box(wcrt_over_signatures(&ctx, busiest, sigs, &cfg)))
    });
    criterion.bench_function("wcrt_over_signatures/task_memoized", |b| {
        let mut scratch = EvalScratch::new();
        b.iter(|| {
            black_box(wcrt_over_signatures_with(
                &ctx,
                busiest,
                sigs,
                &cfg,
                &mut scratch,
            ))
        })
    });
    // The incremental-solver pair: one Theorem 1 fixed point with every
    // iterate rescanning the task set, vs the η-keyed demand prefix
    // tables (tables hot in the scratch, as in the enumeration loop).
    // Both sides alternate two distinct signatures so the tabled side
    // measures the table solver itself, not the warm-start memo hit a
    // repeated identical recurrence would produce.
    let second = sigs.signatures.get(1).unwrap_or(longest);
    criterion.bench_function("fixed_point/signature_direct_scan", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let sig = if flip { longest } else { second };
            black_box(wcrt_for_signature_direct(&ctx, busiest, sig, &cfg))
        })
    });
    criterion.bench_function("fixed_point/signature_prefix_tables", |b| {
        let mut scratch = EvalScratch::new();
        scratch.reset_for_task();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let sig = if flip { longest } else { second };
            black_box(wcrt_for_signature_with(
                &ctx,
                busiest,
                sig,
                &cfg,
                &mut scratch,
            ))
        })
    });
    criterion.bench_function("fixed_point/task_direct_scan", |b| {
        b.iter(|| black_box(wcrt_over_signatures_direct(&ctx, busiest, sigs, &cfg)))
    });
    // The batched lockstep kernel over the same frontier, against both
    // references: `fixed_point/task_direct_scan` (per-iterate scans) and
    // `wcrt_over_signatures/task_memoized` (the scalar warm-started
    // sweep). One component per comparison axis, same measurement.
    criterion.bench_function("fixed_point/task_batched", |b| {
        let mut scratch = EvalScratch::new();
        b.iter(|| {
            black_box(wcrt_over_signatures_batched(
                &ctx,
                busiest,
                sigs,
                &cfg,
                &mut scratch,
            ))
        })
    });
    criterion.bench_function("wcrt_over_signatures/task_batched", |b| {
        let mut scratch = EvalScratch::new();
        b.iter(|| {
            black_box(wcrt_over_signatures_batched(
                &ctx,
                busiest,
                sigs,
                &cfg,
                &mut scratch,
            ))
        })
    });
    criterion.bench_function("analyze/task_set_ep", |b| {
        b.iter(|| black_box(AnalysisSession::new(AnalysisConfig::ep()).analyze(&tasks, &partition)))
    });
    criterion.bench_function("analyze/task_set_en", |b| {
        b.iter(|| black_box(AnalysisSession::new(AnalysisConfig::en()).analyze(&tasks, &partition)))
    });
    criterion.bench_function("signature_cache/enumerate", |b| {
        b.iter(|| black_box(SignatureCache::new(&tasks, &cfg)))
    });
    // placement/*: the search engine's cost model. `probe_warm` is one
    // re-analysis of a perturbed candidate against a resident session —
    // the marginal cost of a search probe (signatures depend only on the
    // task set, so the cache stays hot across placements). `search_seeded`
    // is the full wrapper run on a seed-schedulable set (the common
    // campaign-cell path: one inner evaluation, zero probes), and
    // `search_probing` the budgeted annealing loop on a contended sample
    // where every bin-packing seed fails.
    let probe_layout = layout_clusters(&sizes, 16).expect("initial sizes fit");
    let homes_wfd = assign_resources(&tasks, &probe_layout, ResourceHeuristic::WorstFitDecreasing)
        .expect("fits");
    let homes_bfd = assign_resources(&tasks, &probe_layout, ResourceHeuristic::BestFitDecreasing)
        .expect("fits");
    let part_a = Partition::new(&tasks, &platform, probe_layout.clone(), homes_wfd).expect("valid");
    let part_b = Partition::new(&tasks, &platform, probe_layout, homes_bfd).expect("valid");
    criterion.bench_function("placement/probe_warm", |b| {
        let mut session = AnalysisSession::new(AnalysisConfig::ep());
        session.analyze(&tasks, &part_a);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let p = if flip { &part_a } else { &part_b };
            black_box(session.analyze(&tasks, p))
        })
    });
    let seeded_tasks = panel_task_set(Fig2Panel::A, 4.0, 13);
    assert!(
        AnalysisSession::new(AnalysisConfig::ep())
            .partition_and_analyze(
                &seeded_tasks,
                &platform,
                ResourceHeuristic::WorstFitDecreasing
            )
            .is_schedulable(),
        "placement/search_seeded fixture must be seed-schedulable"
    );
    criterion.bench_function("placement/search_seeded", |b| {
        let engine = PlacementSearch::new(SearchConfig::default());
        let inner = DpcpProtocol::ep();
        let mut session = AnalysisSession::new(AnalysisConfig::ep());
        b.iter(|| {
            black_box(
                engine
                    .run(
                        &mut session,
                        &inner,
                        &seeded_tasks,
                        &platform,
                        ResourceHeuristic::WorstFitDecreasing,
                    )
                    .probes,
            )
        })
    });
    let contended_platform = Platform::new(8).expect("8-core platform");
    let contended = contended_task_set(&contended_platform);
    criterion.bench_function("placement/search_probing", |b| {
        let engine = PlacementSearch::new(SearchConfig {
            probe_budget: 32,
            ..SearchConfig::default()
        });
        let inner = DpcpProtocol::ep();
        let mut session = AnalysisSession::new(AnalysisConfig::ep());
        b.iter(|| {
            black_box(
                engine
                    .run(
                        &mut session,
                        &inner,
                        &contended,
                        &contended_platform,
                        ResourceHeuristic::WorstFitDecreasing,
                    )
                    .probes,
            )
        })
    });
    // The enumerator pair behind the cache: the depth-first reference vs
    // the signature-domain DP (same caps, same sorted output), plus the
    // opt-in dominance-pruned DP — the ablation-validated fast mode that
    // also avoids truncation on the dense bench tasks.
    criterion.bench_function("enumerate/dfs", |b| {
        b.iter(|| {
            for t in tasks.iter() {
                black_box(enumerate_signatures_capped(
                    t,
                    cfg.path_signature_cap,
                    cfg.path_visit_cap,
                ));
            }
        })
    });
    criterion.bench_function("enumerate/dp", |b| {
        b.iter(|| {
            for t in tasks.iter() {
                black_box(enumerate_signatures_dp_capped(
                    t,
                    cfg.path_signature_cap,
                    cfg.path_visit_cap,
                    false,
                ));
            }
        })
    });
    criterion.bench_function("enumerate/dp_pruned", |b| {
        b.iter(|| {
            for t in tasks.iter() {
                black_box(enumerate_signatures_dp_capped(
                    t,
                    cfg.path_signature_cap,
                    cfg.path_visit_cap,
                    true,
                ));
            }
        })
    });

    criterion
        .results()
        .iter()
        .map(|r| ComponentBench {
            name: r.id.clone(),
            median_ns: r.median_ns,
            iters_per_sample: r.iters_per_sample,
            samples: r.samples,
        })
        .collect()
}

/// A deterministic contended sample (the `ci/search_smoke.json` scenario
/// at normalized utilization 0.8) on which all three bin-packing seeds
/// fail — the fixture of `placement/search_probing`.
fn contended_task_set(platform: &Platform) -> dpcp_model::TaskSet {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let scenario = Scenario {
        m: 8,
        nr_range: (3, 6),
        u_avg: 1.5,
        access_prob: 0.75,
        max_requests: 40,
        cs_range_us: (50, 100),
        graph_shape: dpcp_gen::GraphShape::ErdosRenyi,
        light_fraction: 0.0,
        vertex_range: None,
        cs_budget_fraction: None,
        rw_share: None,
    };
    for total_util in [6.4, 5.6, 4.8] {
        for seed in 0..128u64 {
            let mut rng = StdRng::seed_from_u64(0xBE7C_0000 + seed);
            let Ok(tasks) = scenario.sample_task_set(total_util, &mut rng) else {
                continue;
            };
            // The initial federated sizes must fit, or the search bails
            // out before probing (no local move repairs an over-demanded
            // set).
            let demand: usize = tasks.iter().map(initial_processors).sum();
            if demand > platform.processor_count() {
                continue;
            }
            let all_fail = [
                ResourceHeuristic::WorstFitDecreasing,
                ResourceHeuristic::FirstFitDecreasing,
                ResourceHeuristic::BestFitDecreasing,
            ]
            .iter()
            .all(|&h| {
                !AnalysisSession::new(AnalysisConfig::ep())
                    .partition_and_analyze(&tasks, platform, h)
                    .is_schedulable()
            });
            if all_fail {
                return tasks;
            }
        }
    }
    panic!("no contended fitting sample found");
}

/// Median wall-clock milliseconds of `repeats` runs of `f` (after one
/// warmup run), plus the result of the last run for ratio comparison.
fn median_point_ms(repeats: usize, mut f: impl FnMut() -> PointResult) -> (f64, PointResult) {
    let warmup = f();
    let mut times: Vec<f64> = Vec::with_capacity(repeats);
    let mut last = warmup;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        last = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    (times[times.len() / 2], last)
}

/// Boots the admission-control server in-process on an ephemeral port
/// and drives the seeded duplicate-heavy workload against it.
fn serve_section(quick: bool) -> ServeSection {
    let mut workload = if quick {
        dpcp_serve::LoadgenConfig::quick()
    } else {
        dpcp_serve::LoadgenConfig::full()
    };
    // Keep-alive on: the quoted latencies exclude per-request TCP dial
    // cost, and the report carries the connection-reuse counters. A
    // persistent connection pins its worker for the whole client
    // session, so the pool must hold one worker per client — otherwise
    // queued clients wait behind entire sessions and the percentiles
    // measure head-of-line blocking, not the service.
    workload.keep_alive = true;
    let server = dpcp_serve::Server::spawn(dpcp_serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: workload.clients,
        ..dpcp_serve::ServeConfig::default()
    })
    .expect("ephemeral bind");
    let report = dpcp_serve::loadgen::run(&server.local_addr().to_string(), &workload)
        .expect("loadgen setup");
    server.shutdown();
    ServeSection { workload, report }
}

fn harness_comparison(samples: usize, repeats: usize) -> HarnessComparison {
    let scenario = Scenario::fig2(Fig2Panel::A);
    let utilization = 8.0; // U/m = 0.5, the contested middle of Fig. 2(a).
    let mut cfg = EvalConfig {
        samples_per_point: samples,
        seed: 2020,
        ..EvalConfig::default()
    };

    cfg.threads = 1;
    let (sequential_ms, seq_point) =
        median_point_ms(repeats, || evaluate_point(&scenario, utilization, 0, &cfg));

    cfg.threads = 0;
    let threads_parallel = cfg.effective_threads();
    let (parallel_ms, par_point) =
        median_point_ms(repeats, || evaluate_point(&scenario, utilization, 0, &cfg));

    let ratios =
        |p: &PointResult| -> Vec<f64> { Method::ALL.iter().map(|&m| p.ratio(m)).collect() };
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let speedup = sequential_ms / parallel_ms.max(f64::MIN_POSITIVE);
    HarnessComparison {
        scenario: "fig2_panel_a".to_string(),
        total_utilization: utilization,
        samples_per_point: samples,
        repeats,
        threads_sequential: 1,
        threads_parallel,
        sequential_ms,
        parallel_ms,
        speedup,
        host_cores,
        expected_on_single_core: speedup < 1.0 && host_cores == 1,
        methods: Method::ALL.iter().map(|m| m.name().to_string()).collect(),
        acceptance_ratios_sequential: ratios(&seq_point),
        acceptance_ratios_parallel: ratios(&par_point),
        ratios_identical: seq_point == par_point,
    }
}

/// Compares fresh component medians against a committed baseline report;
/// returns `false` (after printing the offenders) when any shared
/// component regressed beyond `tolerance`×.
fn check_regressions(fresh: &Report, baseline_path: &PathBuf, tolerance: f64) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            return false;
        }
    };
    let baseline: Report = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse baseline {}: {e}", baseline_path.display());
            return false;
        }
    };
    println!("\n== regression check (tolerance {tolerance:.1}x) ==");
    let mut ok = true;
    for fresh_c in &fresh.components {
        let Some(base_c) = baseline.components.iter().find(|c| c.name == fresh_c.name) else {
            println!("{:<44} new component (no baseline)", fresh_c.name);
            continue;
        };
        let ratio = fresh_c.median_ns / base_c.median_ns.max(f64::MIN_POSITIVE);
        let verdict = if ratio > tolerance {
            ok = false;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{:<44} {:>12.0} ns vs {:>12.0} ns  ({ratio:>5.2}x)  {verdict}",
            fresh_c.name, fresh_c.median_ns, base_c.median_ns
        );
    }
    for base_c in &baseline.components {
        if !fresh.components.iter().any(|c| c.name == base_c.name) {
            // A silently dropped (or renamed) bench shrinks the gate's
            // coverage — treat it as a failure until the baseline is
            // regenerated alongside the rename.
            println!("{:<44} MISSING from fresh run (baseline only)", base_c.name);
            ok = false;
        }
    }
    ok
}

fn main() -> ExitCode {
    let args = parse_args();
    println!("== component benches ==");
    let components = component_benches(args.sample_size);
    println!("\n== harness point: sequential vs parallel ==");
    let harness = harness_comparison(args.samples, args.repeats);
    println!(
        "sequential: {:.1} ms | parallel ({} threads): {:.1} ms | speedup: {:.2}x \
         ({} cores{}) | identical: {}",
        harness.sequential_ms,
        harness.threads_parallel,
        harness.parallel_ms,
        harness.speedup,
        harness.host_cores,
        if harness.expected_on_single_core {
            ", sub-1x expected on a single core"
        } else {
            ""
        },
        harness.ratios_identical
    );
    let deterministic = harness.ratios_identical;

    println!("\n== serve: duplicate-heavy load ==");
    let serve = serve_section(args.quick);
    println!(
        "{} requests ({} errors) | {} hits / {} misses | p50 {} us, p99 {} us | \
         hit p50 {} us vs miss p50 {} us ({:.1}x) | {:.1} verdicts/sec | byte-identical: {}",
        serve.report.requests,
        serve.report.errors,
        serve.report.hits,
        serve.report.misses,
        serve.report.p50_us,
        serve.report.p99_us,
        serve.report.hit_p50_us,
        serve.report.miss_p50_us,
        serve.report.hit_speedup,
        serve.report.verdicts_per_sec,
        serve.report.byte_identical
    );
    let serve_ok = serve.report.errors == 0 && serve.report.hits > 0 && serve.report.byte_identical;

    let report = Report {
        schema_version: 1,
        host_cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        components,
        harness,
        serve: Some(serve),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").expect("cannot write report");
    println!("wrote {}", args.out.display());

    let mut ok = true;
    if !serve_ok {
        let serve = &report.serve.as_ref().expect("just measured").report;
        eprintln!(
            "FAIL: serve workload broke its contract \
             (errors {}, hits {}, byte-identical {})",
            serve.errors, serve.hits, serve.byte_identical
        );
        ok = false;
    }
    if !deterministic {
        eprintln!(
            "FAIL: parallel run did not reproduce the sequential acceptance ratios \
             (seq {:?} vs par {:?})",
            report.harness.acceptance_ratios_sequential, report.harness.acceptance_ratios_parallel
        );
        ok = false;
    }
    if let Some(baseline) = &args.check_against {
        if !check_regressions(&report, baseline, args.tolerance) {
            eprintln!("FAIL: component medians regressed beyond the tolerance");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
