//! Shared fixtures for the Criterion benchmarks of the DPCP-p workspace.
//!
//! The benchmark targets live in `benches/`:
//!
//! - `analysis` — WCRT analysis and partitioning throughput per
//!   table/figure workload (Fig. 2 panel sizes),
//! - `simulator` — discrete-event engine throughput,
//! - `generation` — workload synthesis throughput.

#![warn(missing_docs)]

use dpcp_gen::scenario::{Fig2Panel, Scenario};
use dpcp_model::TaskSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates a deterministic task set for a Fig. 2 panel at the given
/// total utilization.
///
/// # Panics
///
/// Panics when generation fails for every retry seed (does not happen for
/// the benchmark parameters).
pub fn panel_task_set(panel: Fig2Panel, utilization: f64, seed: u64) -> TaskSet {
    let scenario = Scenario::fig2(panel);
    for retry in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(retry * 7919));
        if let Ok(ts) = scenario.sample_task_set(utilization, &mut rng) {
            return ts;
        }
    }
    panic!("generation failed for panel {panel} at U={utilization}");
}
