//! Resource-agent threads: the RPC executors of the distributed
//! synchronization framework.
//!
//! Under DPCP-p every global resource lives on a designated processor and
//! all requests to it execute *there*, by an agent, at boosted priority
//! (Sec. III-A). This module realises one such processor as a dedicated
//! OS thread: requests arrive over a channel as closures, wait in a
//! priority queue ordered by the requesting job's base priority (FIFO
//! within a priority level), and execute one at a time.
//!
//! Serialising the agent per processor makes critical-section execution
//! non-preemptive within the agent thread — the common implementation
//! choice for agent-based protocols (a processor cannot run two critical
//! sections at once anyway); the priority queue still delivers the DPCP
//! ordering guarantee that a request waits for at most the lower-priority
//! request already in service plus higher-priority arrivals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use dpcp_model::{Priority, ProcessorId, ResourceId};
use parking_lot::{Condvar, Mutex};

/// A unit of work shipped to an agent.
type Op = Box<dyn FnOnce() + Send + 'static>;

struct QueuedRequest {
    priority: Priority,
    seq: u64,
    op: Op,
}

impl PartialEq for QueuedRequest {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedRequest {}
impl PartialOrd for QueuedRequest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedRequest {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then FIFO (lower seq first).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Message {
    Submit(QueuedRequest),
    Shutdown,
}

/// Statistics of one agent thread.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AgentStats {
    /// Requests executed.
    pub executed: u64,
    /// Peak queue length observed when requests were admitted.
    pub peak_queue: usize,
}

/// Handle to one resource-agent thread (one simulated remote processor).
///
/// Dropping the handle shuts the thread down after draining its queue.
///
/// # Examples
///
/// ```
/// use dpcp_model::{Priority, ProcessorId, ResourceId};
/// use dpcp_runtime::agent::ResourceAgent;
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let agent = ResourceAgent::spawn(ProcessorId::new(0));
/// let hits = Arc::new(AtomicU32::new(0));
/// let h = hits.clone();
/// agent.execute(Priority::new(1), ResourceId::new(0), move || {
///     h.fetch_add(1, Ordering::SeqCst);
/// });
/// assert_eq!(hits.load(Ordering::SeqCst), 1);
/// ```
#[derive(Debug)]
pub struct ResourceAgent {
    processor: ProcessorId,
    tx: Sender<Message>,
    seq: Mutex<u64>,
    stats: Arc<Mutex<AgentStats>>,
    thread: Option<JoinHandle<()>>,
}

impl ResourceAgent {
    /// Spawns the agent thread for one processor.
    pub fn spawn(processor: ProcessorId) -> Self {
        let (tx, rx) = unbounded::<Message>();
        let stats = Arc::new(Mutex::new(AgentStats::default()));
        let thread_stats = stats.clone();
        let thread = std::thread::Builder::new()
            .name(format!("dpcp-agent-{processor}"))
            .spawn(move || {
                let mut queue: BinaryHeap<QueuedRequest> = BinaryHeap::new();
                let mut open = true;
                while open || !queue.is_empty() {
                    // Drain whatever is available; block only when idle.
                    if queue.is_empty() {
                        match rx.recv() {
                            Ok(Message::Submit(r)) => queue.push(r),
                            Ok(Message::Shutdown) | Err(_) => open = false,
                        }
                    }
                    while let Ok(msg) = rx.try_recv() {
                        match msg {
                            Message::Submit(r) => queue.push(r),
                            Message::Shutdown => open = false,
                        }
                    }
                    {
                        let mut s = thread_stats.lock();
                        s.peak_queue = s.peak_queue.max(queue.len());
                    }
                    if let Some(next) = queue.pop() {
                        // Count before running: callers waiting inside the
                        // op (execute/execute_with signal completion from
                        // within it) must observe the updated counter as
                        // soon as they wake.
                        thread_stats.lock().executed += 1;
                        (next.op)();
                    }
                }
            })
            .expect("failed to spawn agent thread");
        ResourceAgent {
            processor,
            tx,
            seq: Mutex::new(0),
            stats,
            thread: Some(thread),
        }
    }

    /// The processor this agent represents.
    pub fn processor(&self) -> ProcessorId {
        self.processor
    }

    /// Submits a request without waiting for completion.
    pub fn submit(
        &self,
        priority: Priority,
        resource: ResourceId,
        op: impl FnOnce() + Send + 'static,
    ) {
        let seq = {
            let mut s = self.seq.lock();
            *s += 1;
            *s
        };
        let _ = resource; // identifies the lock; the serial agent needs no per-resource state
        let _ = self.tx.send(Message::Submit(QueuedRequest {
            priority,
            seq,
            op: Box::new(op),
        }));
    }

    /// Submits a request and blocks until the agent has executed it (the
    /// RPC pattern of the paper: the requesting vertex suspends until the
    /// agent finishes).
    pub fn execute(
        &self,
        priority: Priority,
        resource: ResourceId,
        op: impl FnOnce() + Send + 'static,
    ) {
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let signal = done.clone();
        self.submit(priority, resource, move || {
            op();
            let (lock, cv) = &*signal;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*done;
        let mut finished = lock.lock();
        while !*finished {
            cv.wait(&mut finished);
        }
    }

    /// Like [`ResourceAgent::execute`] but returns the closure's result.
    pub fn execute_with<R: Send + 'static>(
        &self,
        priority: Priority,
        resource: ResourceId,
        op: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        let slot: Arc<(Mutex<Option<R>>, Condvar)> = Arc::new((Mutex::new(None), Condvar::new()));
        let signal = slot.clone();
        self.submit(priority, resource, move || {
            let value = op();
            let (lock, cv) = &*signal;
            *lock.lock() = Some(value);
            cv.notify_all();
        });
        let (lock, cv) = &*slot;
        let mut value = lock.lock();
        while value.is_none() {
            cv.wait(&mut value);
        }
        value.take().expect("value was just set")
    }

    /// A snapshot of the agent's statistics.
    pub fn stats(&self) -> AgentStats {
        *self.stats.lock()
    }
}

impl Drop for ResourceAgent {
    fn drop(&mut self) {
        let _ = self.tx.send(Message::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AOrd};
    use std::time::Duration;

    #[test]
    fn executes_serially_and_exclusively() {
        let agent = ResourceAgent::spawn(ProcessorId::new(0));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..8 {
                let agent = &agent;
                let in_cs = in_cs.clone();
                let violations = violations.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        let in_cs = in_cs.clone();
                        let violations = violations.clone();
                        agent.execute(Priority::new(t), ResourceId::new(0), move || {
                            if in_cs.fetch_add(1, AOrd::SeqCst) != 0 {
                                violations.fetch_add(1, AOrd::SeqCst);
                            }
                            std::thread::sleep(Duration::from_micros(50));
                            in_cs.fetch_sub(1, AOrd::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(violations.load(AOrd::SeqCst), 0);
        assert_eq!(agent.stats().executed, 160);
    }

    #[test]
    fn higher_priority_requests_served_first() {
        let agent = ResourceAgent::spawn(ProcessorId::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Occupy the agent so the queue can build up.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = gate.clone();
        agent.submit(Priority::new(99), ResourceId::new(0), move || {
            let (lock, cv) = &*g;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        for (prio, tag) in [(1u32, "low"), (5, "high"), (3, "mid")] {
            let order = order.clone();
            agent.submit(Priority::new(prio), ResourceId::new(0), move || {
                order.lock().push(tag);
            });
        }
        std::thread::sleep(Duration::from_millis(20));
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        // Wait for all queued requests to drain.
        agent.execute(Priority::MIN, ResourceId::new(0), || {});
        let got = order.lock().clone();
        assert_eq!(got, vec!["high", "mid", "low"]);
    }

    #[test]
    fn execute_with_returns_values() {
        let agent = ResourceAgent::spawn(ProcessorId::new(2));
        let counter = Arc::new(AtomicU64::new(41));
        let c = counter.clone();
        let out = agent.execute_with(Priority::new(1), ResourceId::new(0), move || {
            c.fetch_add(1, AOrd::SeqCst) + 1
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn fifo_within_equal_priority() {
        let agent = ResourceAgent::spawn(ProcessorId::new(3));
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = gate.clone();
        agent.submit(Priority::new(9), ResourceId::new(0), move || {
            let (lock, cv) = &*g;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        for i in 0..5u64 {
            let order = order.clone();
            agent.submit(Priority::new(2), ResourceId::new(0), move || {
                order.lock().push(i);
            });
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        agent.execute(Priority::MIN, ResourceId::new(0), || {});
        assert_eq!(order.lock().clone(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_drains_queue() {
        let executed = Arc::new(AtomicU64::new(0));
        {
            let agent = ResourceAgent::spawn(ProcessorId::new(4));
            for _ in 0..50 {
                let executed = executed.clone();
                agent.submit(Priority::new(1), ResourceId::new(0), move || {
                    executed.fetch_add(1, AOrd::SeqCst);
                });
            }
        } // drop joins the thread
        assert_eq!(executed.load(AOrd::SeqCst), 50);
    }
}
