//! A threaded implementation of the DPCP-p synchronization framework:
//! resource-agent threads execute global critical sections remotely
//! (RPC-style, priority-ordered), local resources use plain locks, and
//! DAG jobs run work-conserving on per-job worker pools.
//!
//! This crate demonstrates the protocol on real concurrency primitives
//! (`crossbeam` channels, `parking_lot` locks); the discrete-event
//! simulator in `dpcp-sim` remains the vehicle for timing-accurate
//! studies.
//!
//! # Examples
//!
//! ```
//! use dpcp_model::{Priority, ProcessorId, ResourceId};
//! use dpcp_runtime::{DpcpRuntime, JobSpec};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let rt = DpcpRuntime::builder()
//!     .global_resource(ResourceId::new(0), ProcessorId::new(0))
//!     .build();
//! let shared = Arc::new(AtomicU64::new(0));
//!
//! let mut job = JobSpec::new("demo", Priority::new(3), 2);
//! let s = shared.clone();
//! let head = job.vertex(move |ctx| {
//!     let s = s.clone();
//!     ctx.critical(ResourceId::new(0), move || {
//!         s.fetch_add(1, Ordering::SeqCst);
//!     });
//! });
//! let s = shared.clone();
//! let tail = job.vertex(move |_| {
//!     assert_eq!(s.load(Ordering::SeqCst), 1);
//! });
//! job.edge(head, tail)?;
//! rt.execute_job(job)?;
//! # Ok::<(), dpcp_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod job;
pub mod runtime;

pub use agent::{AgentStats, ResourceAgent};
pub use job::{JobReport, JobSpec, VertexFn};
pub use runtime::{DpcpRuntime, RuntimeBuilder, VertexCtx};
