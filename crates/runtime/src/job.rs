//! DAG jobs for the threaded runtime: vertices are user closures, edges
//! are precedence constraints, execution is work-conserving over a pool
//! of worker threads (the task's federated cluster).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpcp_model::{Dag, ModelError, Priority, VertexId};
use parking_lot::{Condvar, Mutex};

use crate::runtime::{DpcpRuntime, VertexCtx};

/// The closure type executed by a vertex.
pub type VertexFn = Box<dyn FnOnce(&VertexCtx<'_>) + Send + 'static>;

/// One runnable DAG job.
///
/// # Examples
///
/// ```
/// use dpcp_model::Priority;
/// use dpcp_runtime::{DpcpRuntime, JobSpec};
///
/// let rt = DpcpRuntime::builder().build();
/// let mut job = JobSpec::new("diamond", Priority::new(1), 2);
/// let a = job.vertex(|_| {});
/// let b = job.vertex(|_| {});
/// let c = job.vertex(|_| {});
/// job.edge(a, b)?;
/// job.edge(a, c)?;
/// let report = rt.execute_job(job)?;
/// assert_eq!(report.vertices_run, 3);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
pub struct JobSpec {
    name: String,
    priority: Priority,
    workers: usize,
    bodies: Vec<VertexFn>,
    edges: Vec<(usize, usize)>,
}

impl core::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("workers", &self.workers)
            .field("vertices", &self.bodies.len())
            .field("edges", &self.edges.len())
            .finish()
    }
}

impl JobSpec {
    /// Starts a job with a display name, base priority and cluster width
    /// (`m_i` worker threads).
    pub fn new(name: impl Into<String>, priority: Priority, workers: usize) -> Self {
        JobSpec {
            name: name.into(),
            priority,
            workers: workers.max(1),
            bodies: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a vertex; returns its identifier for wiring edges.
    pub fn vertex(&mut self, body: impl FnOnce(&VertexCtx<'_>) + Send + 'static) -> VertexId {
        self.bodies.push(Box::new(body));
        VertexId::new(self.bodies.len() - 1)
    }

    /// Adds a precedence edge.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::VertexOutOfRange`] for unknown endpoints (full
    /// structural validation happens at execution time).
    pub fn edge(&mut self, from: VertexId, to: VertexId) -> Result<(), ModelError> {
        let n = self.bodies.len();
        if from.index() >= n || to.index() >= n {
            return Err(ModelError::VertexOutOfRange {
                vertex: from.index().max(to.index()),
                count: n,
            });
        }
        self.edges.push((from.index(), to.index()));
        Ok(())
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The job's base priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Number of worker threads (the cluster width `m_i`).
    pub fn workers(&self) -> usize {
        self.workers
    }

    pub(crate) fn into_parts(
        self,
    ) -> (String, Priority, usize, Vec<VertexFn>, Vec<(usize, usize)>) {
        (
            self.name,
            self.priority,
            self.workers,
            self.bodies,
            self.edges,
        )
    }
}

/// Outcome of one job execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The job's display name.
    pub name: String,
    /// Wall-clock makespan.
    pub makespan: Duration,
    /// Vertices executed (always the full vertex count on success).
    pub vertices_run: usize,
    /// Critical sections entered through the runtime.
    pub critical_sections: u64,
}

struct SharedState {
    ready: Mutex<ReadyState>,
    cv: Condvar,
}

struct ReadyState {
    queue: VecDeque<usize>,
    bodies: Vec<Option<VertexFn>>,
    preds_left: Vec<usize>,
    remaining: usize,
}

/// Executes a job's DAG over `workers` threads, work-conserving: an idle
/// worker always takes a ready vertex if one exists.
pub(crate) fn run_job(rt: &DpcpRuntime, spec: JobSpec) -> Result<JobReport, ModelError> {
    let (name, priority, workers, bodies, edges) = spec.into_parts();
    let n = bodies.len().max(1);
    let dag = if bodies.is_empty() {
        Dag::new(1, [])?
    } else {
        Dag::new(n, edges)?
    };
    let preds_left: Vec<usize> = (0..n).map(|x| dag.in_degree(VertexId::new(x))).collect();
    let mut bodies: Vec<Option<VertexFn>> = bodies.into_iter().map(Some).collect();
    while bodies.len() < n {
        bodies.push(None);
    }
    let queue: VecDeque<usize> = (0..n).filter(|&x| preds_left[x] == 0).collect();
    let state = Arc::new(SharedState {
        ready: Mutex::new(ReadyState {
            queue,
            bodies,
            preds_left,
            remaining: n,
        }),
        cv: Condvar::new(),
    });

    let started = Instant::now();
    let cs_before = rt.critical_sections();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let state = state.clone();
            let dag = &dag;
            let ctx = VertexCtx::new(rt, priority);
            std::thread::Builder::new()
                .name(format!("dpcp-worker-{name}-{w}"))
                .spawn_scoped(scope, move || worker_loop(&state, dag, &ctx))
                .expect("failed to spawn worker thread");
        }
    });

    let vertices_run = n;
    Ok(JobReport {
        name,
        makespan: started.elapsed(),
        vertices_run,
        critical_sections: rt.critical_sections() - cs_before,
    })
}

fn worker_loop(state: &SharedState, dag: &Dag, ctx: &VertexCtx<'_>) {
    loop {
        let (vertex, body) = {
            let mut ready = state.ready.lock();
            loop {
                if ready.remaining == 0 {
                    return;
                }
                if let Some(v) = ready.queue.pop_front() {
                    let body = ready.bodies[v].take();
                    break (v, body);
                }
                state.cv.wait(&mut ready);
            }
        };
        if let Some(body) = body {
            body(ctx);
        }
        let mut ready = state.ready.lock();
        ready.remaining -= 1;
        for &s in dag.successors(VertexId::new(vertex)) {
            ready.preds_left[s.index()] -= 1;
            if ready.preds_left[s.index()] == 0 {
                ready.queue.push_back(s.index());
            }
        }
        state.cv.notify_all();
        if ready.remaining == 0 {
            state.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::DpcpRuntime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn respects_precedence() {
        let rt = DpcpRuntime::builder().build();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut job = JobSpec::new("chain", Priority::new(1), 4);
        let mut prev = None;
        for i in 0..5 {
            let order = order.clone();
            let v = job.vertex(move |_| order.lock().push(i));
            if let Some(p) = prev {
                job.edge(p, v).unwrap();
            }
            prev = Some(v);
        }
        let report = rt.execute_job(job).unwrap();
        assert_eq!(report.vertices_run, 5);
        assert_eq!(order.lock().clone(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_vertices_actually_overlap() {
        let rt = DpcpRuntime::builder().build();
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let mut job = JobSpec::new("wide", Priority::new(1), 4);
        for _ in 0..4 {
            let peak = peak.clone();
            let live = live.clone();
            job.vertex(move |_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                live.fetch_sub(1, Ordering::SeqCst);
            });
        }
        rt.execute_job(job).unwrap();
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "independent vertices never ran concurrently"
        );
    }

    #[test]
    fn single_worker_serialises() {
        let rt = DpcpRuntime::builder().build();
        let live = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let mut job = JobSpec::new("narrow", Priority::new(1), 1);
        for _ in 0..6 {
            let live = live.clone();
            let violations = violations.clone();
            job.vertex(move |_| {
                if live.fetch_add(1, Ordering::SeqCst) != 0 {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                live.fetch_sub(1, Ordering::SeqCst);
            });
        }
        rt.execute_job(job).unwrap();
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut job = JobSpec::new("bad", Priority::new(1), 1);
        let a = job.vertex(|_| {});
        let err = job.edge(a, VertexId::new(7)).unwrap_err();
        assert!(matches!(err, ModelError::VertexOutOfRange { .. }));
    }

    #[test]
    fn cyclic_job_fails_at_execution() {
        let rt = DpcpRuntime::builder().build();
        let mut job = JobSpec::new("cycle", Priority::new(1), 1);
        let a = job.vertex(|_| {});
        let b = job.vertex(|_| {});
        job.edge(a, b).unwrap();
        job.edge(b, a).unwrap();
        assert!(matches!(rt.execute_job(job), Err(ModelError::CyclicGraph)));
    }

    #[test]
    fn empty_job_completes() {
        let rt = DpcpRuntime::builder().build();
        let job = JobSpec::new("empty", Priority::new(1), 2);
        let report = rt.execute_job(job).unwrap();
        assert_eq!(report.vertices_run, 1); // placeholder vertex
    }
}
