//! The DPCP-p runtime: topology (which resource lives where), agent
//! threads for global resources, plain mutexes for local resources, and
//! the vertex-side API for entering critical sections.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dpcp_model::{ModelError, Priority, ProcessorId, ResourceId};
use parking_lot::Mutex;

use crate::agent::{AgentStats, ResourceAgent};
use crate::job::{run_job, JobReport, JobSpec};

enum Binding {
    /// Requests execute remotely on the agent of the home processor.
    Global { home: ProcessorId },
    /// Requests execute locally under a plain mutex (single-task sharing).
    Local { lock: Mutex<()> },
}

impl core::fmt::Debug for Binding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Binding::Global { home } => write!(f, "Global({home})"),
            Binding::Local { .. } => f.write_str("Local"),
        }
    }
}

/// Builder for [`DpcpRuntime`].
#[derive(Debug, Default)]
pub struct RuntimeBuilder {
    bindings: HashMap<ResourceId, Binding>,
}

impl RuntimeBuilder {
    /// Declares a global resource homed on `processor`; an agent thread
    /// for that processor is created on demand.
    pub fn global_resource(mut self, resource: ResourceId, processor: ProcessorId) -> Self {
        self.bindings
            .insert(resource, Binding::Global { home: processor });
        self
    }

    /// Declares a local resource (accessed through an ordinary lock by
    /// the owning task's vertices).
    pub fn local_resource(mut self, resource: ResourceId) -> Self {
        self.bindings.insert(
            resource,
            Binding::Local {
                lock: Mutex::new(()),
            },
        );
        self
    }

    /// Builds the runtime, spawning one agent thread per distinct home
    /// processor.
    pub fn build(self) -> DpcpRuntime {
        let mut agents: HashMap<ProcessorId, ResourceAgent> = HashMap::new();
        for binding in self.bindings.values() {
            if let Binding::Global { home } = binding {
                agents
                    .entry(*home)
                    .or_insert_with(|| ResourceAgent::spawn(*home));
            }
        }
        DpcpRuntime {
            bindings: self.bindings,
            agents,
            critical_sections: AtomicU64::new(0),
        }
    }
}

/// A running DPCP-p synchronization domain: agents plus resource bindings.
///
/// # Examples
///
/// Two "tasks" (jobs) contending for one global resource through its
/// agent:
///
/// ```
/// use dpcp_model::{Priority, ProcessorId, ResourceId};
/// use dpcp_runtime::{DpcpRuntime, JobSpec};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let counter = Arc::new(AtomicU64::new(0));
/// let rt = DpcpRuntime::builder()
///     .global_resource(ResourceId::new(0), ProcessorId::new(0))
///     .build();
/// let mut job = JobSpec::new("writer", Priority::new(2), 2);
/// for _ in 0..2 {
///     let counter = counter.clone();
///     job.vertex(move |ctx| {
///         let counter = counter.clone();
///         ctx.critical(ResourceId::new(0), move || {
///             counter.fetch_add(1, Ordering::SeqCst);
///         });
///     });
/// }
/// rt.execute_job(job)?;
/// assert_eq!(counter.load(Ordering::SeqCst), 2);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct DpcpRuntime {
    bindings: HashMap<ResourceId, Binding>,
    agents: HashMap<ProcessorId, ResourceAgent>,
    critical_sections: AtomicU64,
}

impl DpcpRuntime {
    /// Starts building a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Executes a DAG job to completion on its own worker pool.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when the job's edges are structurally
    /// invalid (cycles, bad endpoints).
    pub fn execute_job(&self, spec: JobSpec) -> Result<JobReport, ModelError> {
        run_job(self, spec)
    }

    /// Enters a critical section on `resource` at `priority`, blocking the
    /// caller until the section has executed (remotely for global
    /// resources — Rule 3 —, locally otherwise — Rules 1–2).
    ///
    /// # Panics
    ///
    /// Panics if the resource was never declared on the builder: an
    /// undeclared resource has no home processor, and silently running the
    /// closure locally would violate the protocol.
    pub fn critical(
        &self,
        priority: Priority,
        resource: ResourceId,
        op: impl FnOnce() + Send + 'static,
    ) {
        self.critical_sections.fetch_add(1, Ordering::Relaxed);
        match self
            .bindings
            .get(&resource)
            .unwrap_or_else(|| panic!("resource {resource} was not declared on the builder"))
        {
            Binding::Global { home } => {
                self.agents[home].execute(priority, resource, op);
            }
            Binding::Local { lock } => {
                let _guard = lock.lock();
                op();
            }
        }
    }

    /// Like [`DpcpRuntime::critical`], returning the closure's result.
    ///
    /// # Panics
    ///
    /// Panics if the resource was never declared on the builder.
    pub fn critical_with<R: Send + 'static>(
        &self,
        priority: Priority,
        resource: ResourceId,
        op: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        self.critical_sections.fetch_add(1, Ordering::Relaxed);
        match self
            .bindings
            .get(&resource)
            .unwrap_or_else(|| panic!("resource {resource} was not declared on the builder"))
        {
            Binding::Global { home } => self.agents[home].execute_with(priority, resource, op),
            Binding::Local { lock } => {
                let _guard = lock.lock();
                op()
            }
        }
    }

    /// Total critical sections entered since construction.
    pub fn critical_sections(&self) -> u64 {
        self.critical_sections.load(Ordering::Relaxed)
    }

    /// Statistics of the agent on `processor`, if one exists.
    pub fn agent_stats(&self, processor: ProcessorId) -> Option<AgentStats> {
        self.agents.get(&processor).map(ResourceAgent::stats)
    }

    /// The home processor of a declared global resource.
    pub fn home_of(&self, resource: ResourceId) -> Option<ProcessorId> {
        match self.bindings.get(&resource) {
            Some(Binding::Global { home }) => Some(*home),
            _ => None,
        }
    }
}

/// Per-vertex execution context handed to vertex closures.
#[derive(Debug, Clone, Copy)]
pub struct VertexCtx<'rt> {
    rt: &'rt DpcpRuntime,
    priority: Priority,
}

impl<'rt> VertexCtx<'rt> {
    pub(crate) fn new(rt: &'rt DpcpRuntime, priority: Priority) -> Self {
        VertexCtx { rt, priority }
    }

    /// The job's base priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Enters a critical section on behalf of this vertex (the vertex
    /// suspends until the section completes, per Rules 1–3).
    ///
    /// # Panics
    ///
    /// Panics if the resource was never declared on the runtime builder.
    pub fn critical(&self, resource: ResourceId, op: impl FnOnce() + Send + 'static) {
        self.rt.critical(self.priority, resource, op);
    }

    /// Enters a critical section and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the resource was never declared on the runtime builder.
    pub fn critical_with<R: Send + 'static>(
        &self,
        resource: ResourceId,
        op: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        self.rt.critical_with(self.priority, resource, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    fn rid(i: usize) -> ResourceId {
        ResourceId::new(i)
    }
    fn pid(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn global_sections_are_mutually_exclusive_across_jobs() {
        let rt = Arc::new(
            DpcpRuntime::builder()
                .global_resource(rid(0), pid(0))
                .build(),
        );
        let in_cs = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = rt.clone();
                let in_cs = in_cs.clone();
                let violations = violations.clone();
                s.spawn(move || {
                    let mut job = JobSpec::new(format!("job{t}"), Priority::new(t), 2);
                    for _ in 0..10 {
                        let in_cs = in_cs.clone();
                        let violations = violations.clone();
                        job.vertex(move |ctx| {
                            let in_cs = in_cs.clone();
                            let violations = violations.clone();
                            ctx.critical(rid(0), move || {
                                if in_cs.fetch_add(1, Ordering::SeqCst) != 0 {
                                    violations.fetch_add(1, Ordering::SeqCst);
                                }
                                std::thread::sleep(Duration::from_micros(100));
                                in_cs.fetch_sub(1, Ordering::SeqCst);
                            });
                        });
                    }
                    rt.execute_job(job).unwrap();
                });
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
        assert_eq!(rt.critical_sections(), 40);
        assert_eq!(rt.agent_stats(pid(0)).unwrap().executed, 40);
    }

    #[test]
    fn local_resources_serialize_within_a_job() {
        let rt = DpcpRuntime::builder().local_resource(rid(1)).build();
        let in_cs = Arc::new(AtomicUsize::new(0));
        let violations = Arc::new(AtomicUsize::new(0));
        let mut job = JobSpec::new("local", Priority::new(1), 4);
        for _ in 0..8 {
            let in_cs = in_cs.clone();
            let violations = violations.clone();
            job.vertex(move |ctx| {
                let in_cs = in_cs.clone();
                let violations = violations.clone();
                ctx.critical(rid(1), move || {
                    if in_cs.fetch_add(1, Ordering::SeqCst) != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::sleep(Duration::from_micros(100));
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                });
            });
        }
        rt.execute_job(job).unwrap();
        assert_eq!(violations.load(Ordering::SeqCst), 0);
        // Local sections never reach an agent.
        assert!(rt.agent_stats(pid(0)).is_none());
    }

    #[test]
    fn critical_with_round_trips_values() {
        let rt = DpcpRuntime::builder()
            .global_resource(rid(0), pid(3))
            .build();
        let total: u64 = (0..10u64)
            .map(|i| rt.critical_with(Priority::new(1), rid(0), move || i * 2))
            .sum();
        assert_eq!(total, 90);
        assert_eq!(rt.home_of(rid(0)), Some(pid(3)));
        assert_eq!(rt.home_of(rid(9)), None);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_resource_panics() {
        let rt = DpcpRuntime::builder().build();
        rt.critical(Priority::new(1), rid(5), || {});
    }

    #[test]
    fn two_resources_one_processor_share_one_agent() {
        let rt = DpcpRuntime::builder()
            .global_resource(rid(0), pid(0))
            .global_resource(rid(1), pid(0))
            .build();
        let hits = Arc::new(AtomicUsize::new(0));
        for q in [rid(0), rid(1)] {
            let hits = hits.clone();
            rt.critical(Priority::new(1), q, move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(rt.agent_stats(pid(0)).unwrap().executed, 2);
    }
}
