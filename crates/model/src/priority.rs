//! Base priorities and priority ceilings.
//!
//! The paper writes `π_i < π_h` for "τ_i has lower base priority than τ_h";
//! we mirror that: a numerically **greater** [`Priority`] is a **higher**
//! priority. Priority ceilings (Sec. III-C) live in a band strictly above
//! every base priority: `Π_q = π^H + max_{τ_j ∈ τ(ℓ_q)} π_j` where `π^H`
//! exceeds every base priority. [`EffectivePriority`] models both the boosted
//! agent priorities `π^H + π_i` and ceilings on a single comparable axis.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A task base priority; greater values denote higher priority.
///
/// # Examples
///
/// ```
/// use dpcp_model::Priority;
///
/// let low = Priority::new(1);
/// let high = Priority::new(10);
/// assert!(high > low);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Priority(u32);

impl Priority {
    /// The lowest expressible priority.
    pub const MIN: Priority = Priority(0);

    /// Creates a priority from a raw level; greater is higher.
    #[inline]
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// Returns the raw level.
    #[inline]
    pub const fn level(self) -> u32 {
        self.0
    }
}

impl From<u32> for Priority {
    #[inline]
    fn from(level: u32) -> Self {
        Priority(level)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pi{}", self.0)
    }
}

/// A priority in the boosted band `π^H + π`: the effective priority of a
/// global-resource request, or the priority ceiling of a global resource.
///
/// Because every boosted priority exceeds every base priority by
/// construction, the type only needs to order boosted values among
/// themselves; comparisons against base priorities are expressed through
/// [`EffectivePriority::base`].
///
/// # Examples
///
/// ```
/// use dpcp_model::{EffectivePriority, Priority};
///
/// let ceiling = EffectivePriority::boost(Priority::new(5));
/// let request = EffectivePriority::boost(Priority::new(7));
/// // The priority-ceiling grant test of Sec. III-C: `π^H + π_i > Π^℘_k(t)`.
/// assert!(request > ceiling);
/// assert_eq!(ceiling.base(), Priority::new(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EffectivePriority(u32);

impl EffectivePriority {
    /// Boosts a base priority into the agent band (`π^H + π`).
    #[inline]
    pub const fn boost(base: Priority) -> Self {
        EffectivePriority(base.0)
    }

    /// Recovers the base priority that was boosted.
    #[inline]
    pub const fn base(self) -> Priority {
        Priority(self.0)
    }
}

impl fmt::Display for EffectivePriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "piH+{}", self.0)
    }
}

/// How base priorities are assigned to tasks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorityAssignment {
    /// Rate Monotonic: shorter period ⇒ higher priority (the paper's choice).
    #[default]
    RateMonotonic,
    /// Deadline Monotonic: shorter relative deadline ⇒ higher priority.
    DeadlineMonotonic,
}

impl fmt::Display for PriorityAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityAssignment::RateMonotonic => f.write_str("RM"),
            PriorityAssignment::DeadlineMonotonic => f.write_str("DM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greater_means_higher() {
        assert!(Priority::new(9) > Priority::new(3));
        assert_eq!(Priority::MIN, Priority::new(0));
    }

    #[test]
    fn boost_preserves_order() {
        let lo = EffectivePriority::boost(Priority::new(1));
        let hi = EffectivePriority::boost(Priority::new(2));
        assert!(hi > lo);
        assert_eq!(hi.base(), Priority::new(2));
    }

    #[test]
    fn grant_test_requires_strict_exceedance() {
        // A request at the ceiling's own level must NOT be granted
        // (strict `>` in the grant rule keeps Lemma 1 sound).
        let ceiling = EffectivePriority::boost(Priority::new(4));
        let request = EffectivePriority::boost(Priority::new(4));
        assert!((request <= ceiling));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Priority::new(2).to_string(), "pi2");
        assert_eq!(
            EffectivePriority::boost(Priority::new(2)).to_string(),
            "piH+2"
        );
        assert_eq!(PriorityAssignment::RateMonotonic.to_string(), "RM");
        assert_eq!(PriorityAssignment::DeadlineMonotonic.to_string(), "DM");
    }
}
