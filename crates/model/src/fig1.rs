//! The two-task example of Fig. 1 of the paper.
//!
//! Reconstructs the DAG tasks `G_i` and `G_j` of Fig. 1(a) — including the
//! global resource `ℓ_1` (red) shared by both tasks and the local resource
//! `ℓ_2` (blue) used twice inside `τ_i` — plus the four-processor platform
//! and the partition of Fig. 1(b) (`τ_i` on `{℘_3, ℘_4}`, `τ_j` on
//! `{℘_1, ℘_2}`, `ℓ_1` assigned to `℘_2`).
//!
//! The example is used throughout the test suites as a ground-truth vector:
//! its longest path is `(v_{i,1}, v_{i,5}, v_{i,7}, v_{i,8})` with
//! `L*_i = 10` time units, exactly as stated in Sec. II.

use std::collections::BTreeMap;

use crate::error::ModelError;
use crate::graph::Dag;
use crate::ids::{ProcessorId, ResourceId, TaskId};
use crate::platform::{Partition, Platform};
use crate::task::{DagTask, RequestSpec, VertexSpec};
use crate::taskset::TaskSet;
use crate::time::Time;

/// One Fig. 1 time unit. The figure is unitless; we map one unit to 1 ms so
/// critical sections and WCETs stay in realistic ranges.
pub const fn unit() -> Time {
    Time::from_ms(1)
}

/// The global resource `ℓ_1` (red in the figure).
pub const GLOBAL_RESOURCE: ResourceId = ResourceId::new(0);
/// The local resource `ℓ_2` (blue in the figure).
pub const LOCAL_RESOURCE: ResourceId = ResourceId::new(1);

/// Builds the two tasks `(τ_i, τ_j)` of Fig. 1(a).
///
/// Vertex indices are zero-based: `v_{i,1}` of the paper is `VertexId(0)`.
/// Periods/deadlines are not given in the figure; both tasks get
/// `D = T = 30` units, which leaves enough headroom for both analysis
/// variants (the coarser EN bound reaches 26 units for this system) while
/// the two-processor clusters of Fig. 1(b) stay feasible.
///
/// # Errors
///
/// Propagates [`ModelError`] from construction (cannot happen for this
/// fixed input; the signature allows `?`-style use in examples).
pub fn tasks() -> Result<(DagTask, DagTask), ModelError> {
    let u = |n: u64| unit() * n;

    // G_i: 8 vertices. Complete paths named in the paper:
    //   (v1, v5, v7, v8) — the longest, L* = 2+4+2+2 = 10,
    //   (v1, v2, v6, v8), (v1, v4, v7, v8); plus (v1, v3, v6, v8).
    let gi = Dag::new(
        8,
        [
            (0, 1), // v1 → v2
            (0, 2), // v1 → v3
            (0, 3), // v1 → v4
            (0, 4), // v1 → v5
            (1, 5), // v2 → v6
            (2, 5), // v3 → v6
            (3, 6), // v4 → v7
            (4, 6), // v5 → v7
            (5, 7), // v6 → v8
            (6, 7), // v7 → v8
        ],
    )?;
    let ti = DagTask::builder(TaskId::new(0), u(30))
        .dag(gi)
        .vertex(VertexSpec::new(u(2))) // v_{i,1}
        .vertex(VertexSpec::with_requests(
            u(3),
            [RequestSpec::write(GLOBAL_RESOURCE, 1)],
        )) // v_{i,2}: entirely one critical section on ℓ1
        .vertex(VertexSpec::with_requests(
            u(2),
            [RequestSpec::write(LOCAL_RESOURCE, 1)],
        )) // v_{i,3}: holds ℓ2
        .vertex(VertexSpec::with_requests(
            u(2),
            [RequestSpec::write(LOCAL_RESOURCE, 1)],
        )) // v_{i,4}: waits for ℓ2 behind v_{i,3}
        .vertex(VertexSpec::new(u(4))) // v_{i,5}
        .vertex(VertexSpec::new(u(2))) // v_{i,6}
        .vertex(VertexSpec::new(u(2))) // v_{i,7}
        .vertex(VertexSpec::new(u(2))) // v_{i,8}
        .critical_section(GLOBAL_RESOURCE, u(3))
        .critical_section(LOCAL_RESOURCE, u(2))
        .build()?;

    // G_j: 6 vertices. Paths named in the paper: (v1, v4, v6), (v1, v5, v6).
    let gj = Dag::new(
        6,
        [
            (0, 1), // v1 → v2
            (0, 2), // v1 → v3
            (0, 3), // v1 → v4
            (0, 4), // v1 → v5
            (1, 5), // v2 → v6
            (2, 5), // v3 → v6
            (3, 5), // v4 → v6
            (4, 5), // v5 → v6
        ],
    )?;
    let tj = DagTask::builder(TaskId::new(1), u(30))
        .dag(gj)
        .vertex(VertexSpec::new(u(1))) // v_{j,1}
        .vertex(VertexSpec::new(u(3))) // v_{j,2}
        .vertex(VertexSpec::with_requests(
            u(3),
            [RequestSpec::write(GLOBAL_RESOURCE, 1)],
        )) // v_{j,3}: entirely one critical section on ℓ1
        .vertex(VertexSpec::new(u(4))) // v_{j,4}
        .vertex(VertexSpec::new(u(4))) // v_{j,5}
        .vertex(VertexSpec::new(u(1))) // v_{j,6}
        .critical_section(GLOBAL_RESOURCE, u(3))
        .build()?;

    Ok((ti, tj))
}

/// The Fig. 1 task set (`τ_i = τ_0`, `τ_j = τ_1`) over the two resources.
///
/// # Errors
///
/// Propagates [`ModelError`] from construction (cannot happen for this
/// fixed input).
pub fn task_set() -> Result<TaskSet, ModelError> {
    let (ti, tj) = tasks()?;
    TaskSet::new(vec![ti, tj], 2)
}

/// The four-processor platform and the partition of Fig. 1(b):
/// `τ_i` on `{℘_3, ℘_4}` (zero-based `{2, 3}`), `τ_j` on `{℘_1, ℘_2}`
/// (zero-based `{0, 1}`), `ℓ_1` assigned to `℘_2` (zero-based `1`).
///
/// # Errors
///
/// Propagates [`ModelError`] from construction (cannot happen for this
/// fixed input).
pub fn platform_and_partition() -> Result<(Platform, Partition, TaskSet), ModelError> {
    let ts = task_set()?;
    let platform = Platform::new(4)?;
    let partition = Partition::new(
        &ts,
        &platform,
        vec![
            vec![ProcessorId::new(2), ProcessorId::new(3)], // τ_i = τ_0
            vec![ProcessorId::new(0), ProcessorId::new(1)], // τ_j = τ_1
        ],
        BTreeMap::from([(GLOBAL_RESOURCE, ProcessorId::new(1))]),
    )?;
    Ok((platform, partition, ts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    #[test]
    fn longest_path_matches_paper() {
        let (ti, tj) = tasks().unwrap();
        assert_eq!(ti.longest_path_len(), unit() * 10);
        // The witness is (v1, v5, v7, v8) = indices (0, 4, 6, 7).
        assert_eq!(
            ti.longest_path(),
            &[
                VertexId::new(0),
                VertexId::new(4),
                VertexId::new(6),
                VertexId::new(7)
            ]
        );
        assert_eq!(tj.longest_path_len(), unit() * 6);
    }

    #[test]
    fn wcets_match_figure() {
        let (ti, tj) = tasks().unwrap();
        assert_eq!(ti.wcet(), unit() * 19); // 2+3+2+2+4+2+2+2
        assert_eq!(tj.wcet(), unit() * 16); // 1+3+3+4+4+1
    }

    #[test]
    fn resource_classification_matches_figure() {
        let ts = task_set().unwrap();
        assert!(ts.is_global(GLOBAL_RESOURCE));
        assert!(!ts.is_global(LOCAL_RESOURCE));
        assert_eq!(ts.users_of(GLOBAL_RESOURCE).len(), 2);
        assert_eq!(ts.users_of(LOCAL_RESOURCE), &[TaskId::new(0)]);
    }

    #[test]
    fn request_totals() {
        let (ti, tj) = tasks().unwrap();
        assert_eq!(ti.total_requests(GLOBAL_RESOURCE), 1);
        assert_eq!(ti.total_requests(LOCAL_RESOURCE), 2);
        assert_eq!(tj.total_requests(GLOBAL_RESOURCE), 1);
    }

    #[test]
    fn paths_named_in_paper_exist() {
        let (ti, tj) = tasks().unwrap();
        let v = VertexId::new;
        assert!(ti.dag().is_complete_path(&[v(0), v(4), v(6), v(7)]));
        assert!(ti.dag().is_complete_path(&[v(0), v(1), v(5), v(7)]));
        assert!(ti.dag().is_complete_path(&[v(0), v(3), v(6), v(7)]));
        assert!(tj.dag().is_complete_path(&[v(0), v(3), v(5)]));
        assert!(tj.dag().is_complete_path(&[v(0), v(4), v(5)]));
    }

    #[test]
    fn partition_matches_figure() {
        let (platform, part, ts) = platform_and_partition().unwrap();
        assert_eq!(platform.processor_count(), 4);
        assert_eq!(part.cluster_size(TaskId::new(0)), 2);
        assert_eq!(part.home_of(GLOBAL_RESOURCE), Some(ProcessorId::new(1)));
        // ℓ1's agent lives on τ_j's cluster.
        assert_eq!(part.owner_of(ProcessorId::new(1)), Some(TaskId::new(1)));
        assert_eq!(
            part.resources_on_cluster(&ts, TaskId::new(1))
                .collect::<Vec<_>>(),
            vec![GLOBAL_RESOURCE]
        );
    }

    #[test]
    fn both_tasks_are_heavyish_with_two_processors() {
        // With D = T = 30 both tasks fit comfortably on 2 processors:
        // m_i = ⌈(19−10)/(20−10)⌉ = 1 — the figure grants 2, so the
        // partition is feasible a fortiori.
        let (ti, tj) = tasks().unwrap();
        assert!(crate::taskset::initial_processors(&ti) <= 2);
        assert!(crate::taskset::initial_processors(&tj) <= 2);
    }
}
