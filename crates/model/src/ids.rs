//! Typed identifiers for the entities of the system model.
//!
//! Newtype indices keep task, vertex, resource and processor namespaces
//! statically distinct (a `VertexId` can never be used where a `ProcessorId`
//! is expected) while staying `Copy` and hashable for use as map keys.

use core::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                $name(index)
            }

            /// Returns the raw index (useful for dense `Vec` storage).
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                $name(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a task `τ_i` within a [`TaskSet`](crate::TaskSet).
    TaskId,
    "tau"
);

define_id!(
    /// Identifies a vertex `v_{i,x}` within one task's DAG.
    ///
    /// Vertex identifiers are task-local: `VertexId::new(0)` of task `τ_1`
    /// and of task `τ_2` name different vertices.
    VertexId,
    "v"
);

define_id!(
    /// Identifies a shared resource `ℓ_q`.
    ResourceId,
    "l"
);

define_id!(
    /// Identifies a physical processor `℘_k`.
    ProcessorId,
    "p"
);

define_id!(
    /// Identifies a federated cluster (the set of processors dedicated to one
    /// heavy task).
    ClusterId,
    "c"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trip_and_ordering() {
        let a = TaskId::new(3);
        assert_eq!(a.index(), 3);
        assert_eq!(usize::from(a), 3);
        assert_eq!(TaskId::from(3), a);
        assert!(TaskId::new(1) < TaskId::new(2));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(TaskId::new(1).to_string(), "tau1");
        assert_eq!(VertexId::new(4).to_string(), "v4");
        assert_eq!(ResourceId::new(2).to_string(), "l2");
        assert_eq!(ProcessorId::new(0).to_string(), "p0");
        assert_eq!(ClusterId::new(7).to_string(), "c7");
    }

    #[test]
    fn ids_are_hashable_map_keys() {
        let mut set = HashSet::new();
        set.insert(ResourceId::new(1));
        set.insert(ResourceId::new(1));
        set.insert(ResourceId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ProcessorId::default(), ProcessorId::new(0));
    }
}
