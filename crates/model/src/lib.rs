//! System model for the DPCP-p reproduction: parallel (DAG) real-time
//! tasks, shared resources, multiprocessor platforms and federated
//! partitions.
//!
//! This crate implements Sec. II ("System Model and Terminologies") of
//! *DPCP-p: A Distributed Locking Protocol for Parallel Real-Time Tasks*
//! (Yang et al., DAC 2020):
//!
//! - [`Time`] — nanosecond-resolution integer time,
//! - [`Dag`] — precedence graphs with longest-path and complete-path
//!   queries,
//! - [`DagTask`] — sporadic DAG tasks with per-vertex WCETs, request
//!   counts `N_{i,x,q}` and critical-section lengths `L_{i,q}`,
//! - [`TaskSet`] — task collections with local/global resource
//!   classification and Rate-Monotonic priorities,
//! - [`Platform`] / [`Partition`] — processors, federated clusters and
//!   global-resource homes,
//! - [`path`] — path signatures `(L(λ), N^λ)` for the per-path analysis,
//! - [`fig1`] — the paper's running example as a ready-made fixture.
//!
//! # Examples
//!
//! Build the paper's Fig. 1 system and inspect it:
//!
//! ```
//! use dpcp_model::fig1;
//!
//! let (platform, partition, tasks) = fig1::platform_and_partition()?;
//! assert_eq!(platform.processor_count(), 4);
//! assert_eq!(tasks.global_resources().count(), 1);
//! let ti = &tasks.tasks()[0];
//! assert_eq!(ti.longest_path_len(), fig1::unit() * 10);
//! # Ok::<(), dpcp_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod fig1;
pub mod graph;
pub mod ids;
pub mod path;
pub mod platform;
pub mod priority;
pub mod task;
pub mod taskset;
pub mod time;

pub use error::ModelError;
pub use graph::Dag;
pub use ids::{ClusterId, ProcessorId, ResourceId, TaskId, VertexId};
pub use path::{
    enumerate_signatures, enumerate_signatures_capped, enumerate_signatures_dp,
    enumerate_signatures_dp_capped, prune_dominated_signatures, PathSignature, PathSignatures,
};
pub use platform::{Partition, Platform};
pub use priority::{EffectivePriority, Priority, PriorityAssignment};
pub use task::{AccessMode, DagTask, DagTaskBuilder, RequestSpec, VertexSpec};
pub use taskset::{initial_processors, ResourceScope, TaskSet};
pub use time::{eta_jobs, Time};
