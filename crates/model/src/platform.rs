//! Multiprocessor platforms, federated clusters and partitions.
//!
//! A [`Platform`] is `m ≥ 2` identical processors. A [`Partition`] fixes
//! the two placement decisions DPCP-p needs before any analysis can run
//! (Sec. V): which processors form each task's dedicated *cluster*, and on
//! which processor each *global* resource (and hence its agent) lives.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{ProcessorId, ResourceId, TaskId};
use crate::taskset::TaskSet;

/// A platform of `m` identical unispeed processors.
///
/// # Examples
///
/// ```
/// use dpcp_model::Platform;
///
/// let p = Platform::new(16)?;
/// assert_eq!(p.processor_count(), 16);
/// assert_eq!(p.processors().count(), 16);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Platform {
    processors: usize,
}

impl Platform {
    /// Creates a platform with `processors` processors.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TooFewProcessors`] when `processors < 2`
    /// (the model requires `m ≥ 2`).
    pub fn new(processors: usize) -> Result<Self, ModelError> {
        if processors < 2 {
            return Err(ModelError::TooFewProcessors { processors });
        }
        Ok(Platform { processors })
    }

    /// The processor count `m`.
    #[inline]
    pub fn processor_count(&self) -> usize {
        self.processors
    }

    /// Iterates over all processor identifiers.
    pub fn processors(&self) -> impl Iterator<Item = ProcessorId> {
        (0..self.processors).map(ProcessorId::new)
    }

    /// Returns `true` if `p` belongs to the platform.
    pub fn contains(&self, p: ProcessorId) -> bool {
        p.index() < self.processors
    }
}

/// A complete placement decision: per-task clusters plus the assignment of
/// every global resource to a processor.
///
/// Constructed by the partitioning heuristics of `dpcp-core`, or manually
/// for examples and tests via [`Partition::new`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `clusters[i]` = processors dedicated to task `τ_i` (`℘(τ_i)`),
    /// sorted.
    clusters: Vec<Vec<ProcessorId>>,
    /// Processor hosting each global resource's agent.
    resource_homes: BTreeMap<ResourceId, ProcessorId>,
    /// Reverse map: owner task of each processor (dense, by processor).
    owner: Vec<Option<TaskId>>,
}

impl Partition {
    /// Builds and validates a partition for `tasks` on `platform`.
    ///
    /// `clusters[i]` lists the processors of task `τ_i`;
    /// `resource_homes` must assign every *global* resource of the task set
    /// (assignments for local resources are accepted and ignored by the
    /// protocol, matching the paper where only global resources have
    /// designated processors).
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when clusters are empty, overlap, reference
    /// processors outside the platform, do not cover every task, or when a
    /// global resource is left without a home processor.
    pub fn new(
        tasks: &TaskSet,
        platform: &Platform,
        clusters: Vec<Vec<ProcessorId>>,
        resource_homes: BTreeMap<ResourceId, ProcessorId>,
    ) -> Result<Self, ModelError> {
        let mut partition = Self::local_execution(tasks, platform, clusters)?;
        for q in tasks.global_resources() {
            match resource_homes.get(&q) {
                None => return Err(ModelError::UnassignedGlobalResource { resource: q }),
                Some(&p) if !platform.contains(p) => {
                    return Err(ModelError::ProcessorOutOfRange {
                        processor: p,
                        count: platform.processor_count(),
                    })
                }
                Some(_) => {}
            }
        }
        partition.resource_homes = resource_homes;
        Ok(partition)
    }

    /// Builds a partition for a *local-execution* protocol (spin locks or
    /// local semaphores): clusters only, no resource homes. Requests execute
    /// on the processor where the requesting vertex runs, so no global
    /// resource is pinned anywhere.
    ///
    /// # Errors
    ///
    /// Same cluster validation as [`Partition::new`]; the global-resource
    /// coverage check is skipped.
    pub fn local_execution(
        tasks: &TaskSet,
        platform: &Platform,
        clusters: Vec<Vec<ProcessorId>>,
    ) -> Result<Self, ModelError> {
        if clusters.len() != tasks.len() {
            return Err(ModelError::PartitionTaskMismatch {
                clusters: clusters.len(),
                tasks: tasks.len(),
            });
        }
        let mut owner: Vec<Option<TaskId>> = vec![None; platform.processor_count()];
        let mut clusters = clusters;
        for (i, cluster) in clusters.iter_mut().enumerate() {
            let task = TaskId::new(i);
            if cluster.is_empty() {
                return Err(ModelError::EmptyCluster { task });
            }
            cluster.sort_unstable();
            cluster.dedup();
            for &p in cluster.iter() {
                if !platform.contains(p) {
                    return Err(ModelError::ProcessorOutOfRange {
                        processor: p,
                        count: platform.processor_count(),
                    });
                }
                if owner[p.index()].replace(task).is_some() {
                    return Err(ModelError::OverlappingClusters { processor: p });
                }
            }
        }
        Ok(Partition {
            clusters,
            resource_homes: BTreeMap::new(),
            owner,
        })
    }

    /// Builds a *mixed* partition (the Sec. VI extension): heavy tasks keep
    /// exclusive clusters, light tasks (`C_i ≤ D_i`) are sequential and may
    /// share a processor with other light tasks.
    ///
    /// # Errors
    ///
    /// Same validation as [`Partition::new`], except that a processor may
    /// be claimed by several *light* tasks; claiming a processor by a heavy
    /// task and any other task still fails with
    /// [`ModelError::OverlappingClusters`].
    pub fn mixed(
        tasks: &TaskSet,
        platform: &Platform,
        clusters: Vec<Vec<ProcessorId>>,
        resource_homes: BTreeMap<ResourceId, ProcessorId>,
    ) -> Result<Self, ModelError> {
        if clusters.len() != tasks.len() {
            return Err(ModelError::PartitionTaskMismatch {
                clusters: clusters.len(),
                tasks: tasks.len(),
            });
        }
        // `owner` keeps the unique owner where one exists; processors
        // shared among light tasks get `None`.
        let mut owner: Vec<Option<TaskId>> = vec![None; platform.processor_count()];
        let mut exclusive: Vec<bool> = vec![true; platform.processor_count()];
        let mut clusters = clusters;
        for (i, cluster) in clusters.iter_mut().enumerate() {
            let task = TaskId::new(i);
            let heavy = tasks.task(task).is_heavy();
            if cluster.is_empty() {
                return Err(ModelError::EmptyCluster { task });
            }
            cluster.sort_unstable();
            cluster.dedup();
            for &p in cluster.iter() {
                if !platform.contains(p) {
                    return Err(ModelError::ProcessorOutOfRange {
                        processor: p,
                        count: platform.processor_count(),
                    });
                }
                match owner[p.index()] {
                    None if exclusive[p.index()] => {
                        owner[p.index()] = Some(task);
                        if !heavy {
                            // Mark shareable-by-lights; stays owned until a
                            // second light claims it.
                            exclusive[p.index()] = false;
                        }
                    }
                    Some(prev) => {
                        let prev_heavy = tasks.task(prev).is_heavy();
                        if heavy || prev_heavy {
                            return Err(ModelError::OverlappingClusters { processor: p });
                        }
                        owner[p.index()] = None; // shared among lights
                    }
                    None => {
                        if heavy {
                            return Err(ModelError::OverlappingClusters { processor: p });
                        }
                    }
                }
            }
        }
        for q in tasks.global_resources() {
            match resource_homes.get(&q) {
                None => return Err(ModelError::UnassignedGlobalResource { resource: q }),
                Some(&p) if !platform.contains(p) => {
                    return Err(ModelError::ProcessorOutOfRange {
                        processor: p,
                        count: platform.processor_count(),
                    })
                }
                Some(_) => {}
            }
        }
        Ok(Partition {
            clusters,
            resource_homes,
            owner,
        })
    }

    /// The cluster `℘(τ_i)` dedicated to a task, sorted.
    ///
    /// # Panics
    ///
    /// Panics if the task is out of range.
    #[inline]
    pub fn cluster(&self, task: TaskId) -> &[ProcessorId] {
        &self.clusters[task.index()]
    }

    /// All tasks whose cluster contains processor `p` (more than one only
    /// for processors shared among light tasks in a mixed partition).
    pub fn tasks_on(&self, p: ProcessorId) -> Vec<TaskId> {
        self.clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.binary_search(&p).is_ok())
            .map(|(i, _)| TaskId::new(i))
            .collect()
    }

    /// `true` when processor `p` is shared by several (light) tasks.
    pub fn is_shared(&self, p: ProcessorId) -> bool {
        self.tasks_on(p).len() > 1
    }

    /// The cluster size `m_i`.
    #[inline]
    pub fn cluster_size(&self, task: TaskId) -> usize {
        self.clusters[task.index()].len()
    }

    /// All clusters, indexed by task.
    #[inline]
    pub fn clusters(&self) -> &[Vec<ProcessorId>] {
        &self.clusters
    }

    /// The task whose cluster contains processor `p`, if any.
    pub fn owner_of(&self, p: ProcessorId) -> Option<TaskId> {
        self.owner.get(p.index()).copied().flatten()
    }

    /// The processor hosting a global resource's agent, if assigned.
    pub fn home_of(&self, resource: ResourceId) -> Option<ProcessorId> {
        self.resource_homes.get(&resource).copied()
    }

    /// All `(resource, processor)` assignments, ascending by resource.
    pub fn resource_homes(&self) -> impl Iterator<Item = (ResourceId, ProcessorId)> + '_ {
        self.resource_homes.iter().map(|(&q, &p)| (q, p))
    }

    /// The global resources hosted on processor `p` — the paper's
    /// `Φ(℘_k)` — restricted to resources that are global in `tasks`.
    pub fn resources_on<'a>(
        &'a self,
        tasks: &'a TaskSet,
        p: ProcessorId,
    ) -> impl Iterator<Item = ResourceId> + 'a {
        self.resource_homes
            .iter()
            .filter(move |&(&q, &home)| home == p && tasks.is_global(q))
            .map(|(&q, _)| q)
    }

    /// The global resources co-located with `ℓ_q` — the paper's
    /// `Φ^℘(ℓ_q)`, *including* `ℓ_q` itself (see DESIGN.md note 2).
    pub fn co_located<'a>(
        &'a self,
        tasks: &'a TaskSet,
        resource: ResourceId,
    ) -> Box<dyn Iterator<Item = ResourceId> + 'a> {
        match self.home_of(resource) {
            Some(p) => Box::new(self.resources_on(tasks, p)),
            None => Box::new(core::iter::empty()),
        }
    }

    /// The global resources hosted on any processor of a task's cluster —
    /// the paper's `Φ^℘(τ_i)`.
    pub fn resources_on_cluster<'a>(
        &'a self,
        tasks: &'a TaskSet,
        task: TaskId,
    ) -> impl Iterator<Item = ResourceId> + 'a {
        self.resource_homes
            .iter()
            .filter(move |&(&q, &home)| {
                tasks.is_global(q) && self.clusters[task.index()].binary_search(&home).is_ok()
            })
            .map(|(&q, _)| q)
    }

    /// Total number of processors claimed by clusters.
    pub fn assigned_processors(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }

    /// The platform size this partition was validated against.
    pub fn processor_count(&self) -> usize {
        self.owner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;
    use crate::task::{DagTask, RequestSpec, VertexSpec};
    use crate::time::Time;

    fn rid(i: usize) -> ResourceId {
        ResourceId::new(i)
    }
    fn pid(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }
    fn tid(i: usize) -> TaskId {
        TaskId::new(i)
    }

    fn shared_set() -> TaskSet {
        let mk = |id: usize, q: usize| {
            DagTask::builder(tid(id), Time::from_ms(10))
                .vertex(VertexSpec::with_requests(
                    Time::from_ms(1),
                    [RequestSpec::new(rid(q), 1)],
                ))
                .critical_section(rid(q), Time::from_us(10))
                .build()
                .unwrap()
        };
        // ℓ0 global (τ0, τ1); ℓ1 local (τ2 only).
        let t2 = DagTask::builder(tid(2), Time::from_ms(10))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(1),
                [RequestSpec::new(rid(1), 1)],
            ))
            .critical_section(rid(1), Time::from_us(10))
            .build()
            .unwrap();
        TaskSet::new(vec![mk(0, 0), mk(1, 0), t2], 2).unwrap()
    }

    fn valid_partition(ts: &TaskSet, platform: &Platform) -> Partition {
        Partition::new(
            ts,
            platform,
            vec![vec![pid(0), pid(1)], vec![pid(2)], vec![pid(3)]],
            BTreeMap::from([(rid(0), pid(2))]),
        )
        .unwrap()
    }

    #[test]
    fn platform_validates_size() {
        assert!(Platform::new(1).is_err());
        assert!(Platform::new(2).is_ok());
        let p = Platform::new(4).unwrap();
        assert!(p.contains(pid(3)));
        assert!(!p.contains(pid(4)));
    }

    #[test]
    fn partition_queries() {
        let ts = shared_set();
        let platform = Platform::new(4).unwrap();
        let part = valid_partition(&ts, &platform);
        assert_eq!(part.cluster(tid(0)), &[pid(0), pid(1)]);
        assert_eq!(part.cluster_size(tid(0)), 2);
        assert_eq!(part.owner_of(pid(2)), Some(tid(1)));
        assert_eq!(part.owner_of(pid(0)), Some(tid(0)));
        assert_eq!(part.home_of(rid(0)), Some(pid(2)));
        assert_eq!(part.home_of(rid(1)), None);
        assert_eq!(part.assigned_processors(), 4);
        assert_eq!(
            part.resources_on(&ts, pid(2)).collect::<Vec<_>>(),
            vec![rid(0)]
        );
        assert!(part.resources_on(&ts, pid(0)).next().is_none());
        assert_eq!(
            part.co_located(&ts, rid(0)).collect::<Vec<_>>(),
            vec![rid(0)]
        );
        // ℓ0 lives on τ1's cluster.
        assert_eq!(
            part.resources_on_cluster(&ts, tid(1)).collect::<Vec<_>>(),
            vec![rid(0)]
        );
        assert!(part.resources_on_cluster(&ts, tid(0)).next().is_none());
    }

    #[test]
    fn partition_rejects_overlap_and_gaps() {
        let ts = shared_set();
        let platform = Platform::new(4).unwrap();
        let homes = BTreeMap::from([(rid(0), pid(0))]);

        let e = Partition::new(
            &ts,
            &platform,
            vec![vec![pid(0)], vec![pid(0)], vec![pid(1)]],
            homes.clone(),
        )
        .unwrap_err();
        assert!(matches!(e, ModelError::OverlappingClusters { .. }));

        let e = Partition::new(
            &ts,
            &platform,
            vec![vec![pid(0)], vec![], vec![pid(1)]],
            homes.clone(),
        )
        .unwrap_err();
        assert!(matches!(e, ModelError::EmptyCluster { .. }));

        let e = Partition::new(&ts, &platform, vec![vec![pid(0)]], homes.clone()).unwrap_err();
        assert!(matches!(e, ModelError::PartitionTaskMismatch { .. }));

        let e = Partition::new(
            &ts,
            &platform,
            vec![vec![pid(0)], vec![pid(9)], vec![pid(1)]],
            homes,
        )
        .unwrap_err();
        assert!(matches!(e, ModelError::ProcessorOutOfRange { .. }));
    }

    #[test]
    fn partition_requires_homes_for_globals_only() {
        let ts = shared_set();
        let platform = Platform::new(4).unwrap();
        let e = Partition::new(
            &ts,
            &platform,
            vec![vec![pid(0)], vec![pid(1)], vec![pid(2)]],
            BTreeMap::new(),
        )
        .unwrap_err();
        assert!(matches!(
            e,
            ModelError::UnassignedGlobalResource { resource } if resource == rid(0)
        ));
        // Local resource ℓ1 needs no home.
        let ok = Partition::new(
            &ts,
            &platform,
            vec![vec![pid(0)], vec![pid(1)], vec![pid(2)]],
            BTreeMap::from([(rid(0), pid(3))]),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn cluster_lists_are_sorted_and_deduped() {
        let ts = shared_set();
        let platform = Platform::new(4).unwrap();
        let part = Partition::new(
            &ts,
            &platform,
            vec![vec![pid(1), pid(0), pid(1)], vec![pid(2)], vec![pid(3)]],
            BTreeMap::from([(rid(0), pid(2))]),
        )
        .unwrap();
        assert_eq!(part.cluster(tid(0)), &[pid(0), pid(1)]);
    }

    // Silence an unused-import warning in this test module.
    #[allow(dead_code)]
    fn _use_vertex_id(v: VertexId) -> usize {
        v.index()
    }
}
