//! Error types for model construction and validation.

use core::fmt;

use crate::ids::{ProcessorId, ResourceId, TaskId, VertexId};
use crate::time::Time;

/// Errors raised while constructing or validating model entities.
///
/// Every constructor in this crate validates its arguments (a malformed task
/// set would silently corrupt downstream analysis results), and reports
/// failures through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A DAG must contain at least one vertex.
    EmptyDag,
    /// An edge endpoint referenced a vertex index `vertex ≥ count`.
    VertexOutOfRange {
        /// The offending index.
        vertex: usize,
        /// The number of vertices in the DAG.
        count: usize,
    },
    /// An edge connected a vertex to itself.
    SelfLoop {
        /// The offending vertex index.
        vertex: usize,
    },
    /// The same directed edge was given twice.
    DuplicateEdge {
        /// Source vertex index.
        from: usize,
        /// Destination vertex index.
        to: usize,
    },
    /// The edge set contains a cycle, so no topological order exists.
    CyclicGraph,
    /// A task period must be positive.
    NonPositivePeriod {
        /// The offending task.
        task: TaskId,
    },
    /// A relative deadline must be positive and at most the period
    /// (constrained deadlines, Sec. II).
    InvalidDeadline {
        /// The offending task.
        task: TaskId,
        /// The rejected deadline.
        deadline: Time,
        /// The task period.
        period: Time,
    },
    /// The number of per-vertex WCETs must match the DAG vertex count.
    VertexSpecCountMismatch {
        /// The offending task.
        task: TaskId,
        /// Number of vertex specifications supplied.
        specs: usize,
        /// Number of vertices in the DAG.
        vertices: usize,
    },
    /// A vertex requests a resource for which the task declares no maximum
    /// critical-section length `L_{i,q}`.
    MissingCriticalSectionLength {
        /// The offending task.
        task: TaskId,
        /// The vertex making the request.
        vertex: VertexId,
        /// The resource without a declared length.
        resource: ResourceId,
    },
    /// A declared critical-section length must be positive.
    NonPositiveCriticalSection {
        /// The offending task.
        task: TaskId,
        /// The resource with the zero length.
        resource: ResourceId,
    },
    /// A vertex WCET is too small to contain its critical sections
    /// (the model requires `C_{i,x} ≥ Σ_q N_{i,x,q} · L_{i,q}`).
    VertexWcetBelowCriticalSections {
        /// The offending task.
        task: TaskId,
        /// The offending vertex.
        vertex: VertexId,
        /// The vertex WCET.
        wcet: Time,
        /// The total critical-section demand of the vertex.
        critical: Time,
    },
    /// A task references a resource outside the task set's declared universe.
    ResourceOutOfRange {
        /// The offending task.
        task: TaskId,
        /// The out-of-range resource.
        resource: ResourceId,
        /// Number of resources in the task set.
        count: usize,
    },
    /// Task identifiers inside a task set must be dense (`τ_0 … τ_{n-1}`).
    NonDenseTaskIds {
        /// The expected identifier at this position.
        expected: TaskId,
        /// The identifier actually found.
        found: TaskId,
    },
    /// A platform must have at least two processors (`m ≥ 2`, Sec. II).
    TooFewProcessors {
        /// The rejected processor count.
        processors: usize,
    },
    /// A partition referenced a processor outside the platform.
    ProcessorOutOfRange {
        /// The offending processor.
        processor: ProcessorId,
        /// The platform size.
        count: usize,
    },
    /// Two clusters claimed the same processor.
    OverlappingClusters {
        /// The doubly-assigned processor.
        processor: ProcessorId,
    },
    /// A task was assigned an empty cluster.
    EmptyCluster {
        /// The offending task.
        task: TaskId,
    },
    /// A partition must cover every task of the task set exactly once.
    PartitionTaskMismatch {
        /// Number of per-task clusters supplied.
        clusters: usize,
        /// Number of tasks in the task set.
        tasks: usize,
    },
    /// A global resource was left unassigned by a partition.
    UnassignedGlobalResource {
        /// The unassigned resource.
        resource: ResourceId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyDag => f.write_str("a DAG must contain at least one vertex"),
            ModelError::VertexOutOfRange { vertex, count } => write!(
                f,
                "edge endpoint {vertex} out of range for a DAG with {count} vertices"
            ),
            ModelError::SelfLoop { vertex } => {
                write!(f, "vertex {vertex} has a self-loop edge")
            }
            ModelError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge ({from}, {to})")
            }
            ModelError::CyclicGraph => f.write_str("edge set contains a cycle"),
            ModelError::NonPositivePeriod { task } => {
                write!(f, "{task} has a non-positive period")
            }
            ModelError::InvalidDeadline {
                task,
                deadline,
                period,
            } => write!(
                f,
                "{task} deadline {deadline} must be positive and at most the period {period}"
            ),
            ModelError::VertexSpecCountMismatch {
                task,
                specs,
                vertices,
            } => write!(
                f,
                "{task} supplies {specs} vertex specs for a DAG with {vertices} vertices"
            ),
            ModelError::MissingCriticalSectionLength {
                task,
                vertex,
                resource,
            } => write!(
                f,
                "{task} {vertex} requests {resource} but the task declares no L value for it"
            ),
            ModelError::NonPositiveCriticalSection { task, resource } => write!(
                f,
                "{task} declares a zero critical-section length for {resource}"
            ),
            ModelError::VertexWcetBelowCriticalSections {
                task,
                vertex,
                wcet,
                critical,
            } => write!(
                f,
                "{task} {vertex} WCET {wcet} is below its critical-section demand {critical}"
            ),
            ModelError::ResourceOutOfRange {
                task,
                resource,
                count,
            } => write!(
                f,
                "{task} references {resource} outside the {count}-resource universe"
            ),
            ModelError::NonDenseTaskIds { expected, found } => write!(
                f,
                "task identifiers must be dense: expected {expected}, found {found}"
            ),
            ModelError::TooFewProcessors { processors } => write!(
                f,
                "a platform needs at least 2 processors, got {processors}"
            ),
            ModelError::ProcessorOutOfRange { processor, count } => write!(
                f,
                "{processor} out of range for a platform with {count} processors"
            ),
            ModelError::OverlappingClusters { processor } => {
                write!(f, "{processor} is claimed by more than one cluster")
            }
            ModelError::EmptyCluster { task } => {
                write!(f, "{task} was assigned an empty cluster")
            }
            ModelError::PartitionTaskMismatch { clusters, tasks } => write!(
                f,
                "partition supplies {clusters} clusters for {tasks} tasks"
            ),
            ModelError::UnassignedGlobalResource { resource } => {
                write!(
                    f,
                    "global resource {resource} is not assigned to a processor"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = ModelError::DuplicateEdge { from: 1, to: 2 };
        assert_eq!(e.to_string(), "duplicate edge (1, 2)");
        let e = ModelError::TooFewProcessors { processors: 1 };
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ModelError>();
    }

    #[test]
    fn display_covers_every_variant() {
        // Smoke-format each variant; a panic or empty string here would make
        // downstream error reports useless.
        let samples: Vec<ModelError> = vec![
            ModelError::EmptyDag,
            ModelError::VertexOutOfRange {
                vertex: 9,
                count: 3,
            },
            ModelError::SelfLoop { vertex: 0 },
            ModelError::DuplicateEdge { from: 0, to: 1 },
            ModelError::CyclicGraph,
            ModelError::NonPositivePeriod {
                task: TaskId::new(0),
            },
            ModelError::InvalidDeadline {
                task: TaskId::new(0),
                deadline: Time::ZERO,
                period: Time::from_ms(1),
            },
            ModelError::VertexSpecCountMismatch {
                task: TaskId::new(0),
                specs: 1,
                vertices: 2,
            },
            ModelError::MissingCriticalSectionLength {
                task: TaskId::new(0),
                vertex: VertexId::new(1),
                resource: ResourceId::new(2),
            },
            ModelError::NonPositiveCriticalSection {
                task: TaskId::new(0),
                resource: ResourceId::new(1),
            },
            ModelError::VertexWcetBelowCriticalSections {
                task: TaskId::new(0),
                vertex: VertexId::new(0),
                wcet: Time::from_us(1),
                critical: Time::from_us(2),
            },
            ModelError::ResourceOutOfRange {
                task: TaskId::new(0),
                resource: ResourceId::new(5),
                count: 2,
            },
            ModelError::NonDenseTaskIds {
                expected: TaskId::new(0),
                found: TaskId::new(3),
            },
            ModelError::TooFewProcessors { processors: 0 },
            ModelError::ProcessorOutOfRange {
                processor: ProcessorId::new(9),
                count: 4,
            },
            ModelError::OverlappingClusters {
                processor: ProcessorId::new(1),
            },
            ModelError::EmptyCluster {
                task: TaskId::new(2),
            },
            ModelError::PartitionTaskMismatch {
                clusters: 1,
                tasks: 2,
            },
            ModelError::UnassignedGlobalResource {
                resource: ResourceId::new(0),
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
