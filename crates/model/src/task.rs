//! Parallel (DAG) task specifications.
//!
//! A [`DagTask`] bundles the paper's per-task parameters: the sporadic timing
//! triple `(C_i, D_i, T_i)`, the precedence DAG `G_i`, per-vertex WCETs
//! `C_{i,x}`, per-vertex maximum request counts `N_{i,x,q}` and per-resource
//! maximum critical-section lengths `L_{i,q}`. Construction validates the
//! model assumptions of Sec. II (constrained deadlines, critical sections
//! contained in vertex WCETs, non-nested requests).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::graph::Dag;
use crate::ids::{ResourceId, TaskId, VertexId};
use crate::priority::Priority;
use crate::time::Time;

/// How a request accesses its resource.
///
/// The paper's model is write-only: every request takes the resource
/// exclusively. Reader-writer protocols (phase-fair RW locks, MPCP/DGA
/// variants from the wider literature) additionally allow *read* requests,
/// which may overlap with other reads of the same resource. `Write` is the
/// serde default so every pre-RW artifact deserializes unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessMode {
    /// Exclusive access — the only mode in the source paper.
    #[default]
    Write,
    /// Shared access; concurrent reads of one resource may overlap.
    Read,
}

impl AccessMode {
    /// Returns `true` for [`AccessMode::Read`].
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, AccessMode::Read)
    }
}

impl Serialize for AccessMode {
    fn serialize(&self) -> serde::Value {
        match self {
            AccessMode::Write => serde::Value::String("Write".to_owned()),
            AccessMode::Read => serde::Value::String("Read".to_owned()),
        }
    }
}

// Hand-written so a *missing* field (the vendored derive passes
// `Value::Null` for absent members) defaults to `Write`: all committed
// JSON predates access modes and must keep deserializing bit-for-bit.
impl Deserialize for AccessMode {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Null => Ok(AccessMode::Write),
            serde::Value::String(s) if s == "Write" => Ok(AccessMode::Write),
            serde::Value::String(s) if s == "Read" => Ok(AccessMode::Read),
            _ => Err(serde::Error::custom("expected \"Write\" or \"Read\"")),
        }
    }
}

/// The maximum number of requests `N_{i,x,q}` a vertex issues to one
/// resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestSpec {
    /// The requested resource `ℓ_q`.
    pub resource: ResourceId,
    /// The maximum number of requests the vertex issues to it.
    pub count: u32,
    /// Whether the requests read or write the resource (write by default).
    pub mode: AccessMode,
}

impl RequestSpec {
    /// Creates a write-mode request specification (alias of
    /// [`RequestSpec::write`], kept for the paper's write-only model).
    pub const fn new(resource: ResourceId, count: u32) -> Self {
        Self::write(resource, count)
    }

    /// Creates an exclusive (write) request specification.
    pub const fn write(resource: ResourceId, count: u32) -> Self {
        RequestSpec {
            resource,
            count,
            mode: AccessMode::Write,
        }
    }

    /// Creates a shared (read) request specification.
    pub const fn read(resource: ResourceId, count: u32) -> Self {
        RequestSpec {
            resource,
            count,
            mode: AccessMode::Read,
        }
    }
}

/// One vertex `v_{i,x}`: its WCET and the requests it may issue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexSpec {
    wcet: Time,
    /// Sorted by `(resource, mode)` with `Write < Read`, at most one entry
    /// per resource and mode, zero counts removed. Write-only vertices thus
    /// keep the exact pre-RW layout (sorted by resource, one entry each).
    requests: Vec<RequestSpec>,
}

impl VertexSpec {
    /// Creates a vertex with the given WCET and no requests.
    pub fn new(wcet: Time) -> Self {
        VertexSpec {
            wcet,
            requests: Vec::new(),
        }
    }

    /// Creates a vertex with the given WCET and request list (merged and
    /// sorted; zero counts dropped).
    pub fn with_requests(wcet: Time, requests: impl IntoIterator<Item = RequestSpec>) -> Self {
        let mut merged: BTreeMap<(ResourceId, AccessMode), u32> = BTreeMap::new();
        for r in requests {
            if r.count > 0 {
                *merged.entry((r.resource, r.mode)).or_insert(0) += r.count;
            }
        }
        VertexSpec {
            wcet,
            requests: merged
                .into_iter()
                .map(|((resource, mode), count)| RequestSpec {
                    resource,
                    count,
                    mode,
                })
                .collect(),
        }
    }

    /// The vertex WCET `C_{i,x}` (critical sections included).
    #[inline]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// The vertex's request specifications, sorted by `(resource, mode)`.
    #[inline]
    pub fn requests(&self) -> &[RequestSpec] {
        &self.requests
    }

    /// The number of requests this vertex issues to `resource` across both
    /// access modes (`N_{i,x,q}`).
    pub fn request_count(&self, resource: ResourceId) -> u32 {
        // At most two entries per resource (one per mode); the partition
        // point found by resource alone anchors a short scan either way.
        let anchor = self.requests.partition_point(|r| r.resource < resource);
        self.requests[anchor..]
            .iter()
            .take_while(|r| r.resource == resource)
            .map(|r| r.count)
            .sum()
    }

    /// The number of requests this vertex issues to `resource` in one
    /// access mode.
    pub fn request_count_mode(&self, resource: ResourceId, mode: AccessMode) -> u32 {
        self.requests
            .binary_search_by_key(&(resource, mode), |r| (r.resource, r.mode))
            .map(|i| self.requests[i].count)
            .unwrap_or(0)
    }

    /// Returns `true` if any request of this vertex is a read.
    pub fn has_reads(&self) -> bool {
        self.requests.iter().any(|r| r.mode.is_read())
    }
}

/// A sporadic parallel real-time task `τ_i`.
///
/// # Examples
///
/// ```
/// use dpcp_model::{Dag, DagTask, RequestSpec, ResourceId, TaskId, Time, VertexSpec};
///
/// let dag = Dag::new(2, [(0, 1)])?;
/// let task = DagTask::builder(TaskId::new(0), Time::from_ms(10))
///     .dag(dag)
///     .vertex(VertexSpec::new(Time::from_ms(4)))
///     .vertex(VertexSpec::with_requests(
///         Time::from_ms(8),
///         [RequestSpec::write(ResourceId::new(0), 2)],
///     ))
///     .critical_section(ResourceId::new(0), Time::from_us(50))
///     .build()?;
/// assert_eq!(task.wcet(), Time::from_ms(12));
/// assert!(task.is_heavy()); // C/D = 1.2 > 1
/// assert_eq!(task.total_requests(ResourceId::new(0)), 2);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DagTask {
    id: TaskId,
    period: Time,
    deadline: Time,
    priority: Priority,
    dag: Dag,
    vertices: Vec<VertexSpec>,
    /// Maximum *write* critical-section length `L_{i,q}` per used resource.
    cs_lengths: BTreeMap<ResourceId, Time>,
    /// Maximum *read* critical-section length `L^R_{i,q}`, kept only for
    /// resources the task actually reads (empty for the paper's write-only
    /// model). Defaults to the write length when never declared.
    read_cs_lengths: BTreeMap<ResourceId, Time>,
    // ---- derived, cached at construction ----
    wcet: Time,
    longest_path_len: Time,
    longest_path: Vec<VertexId>,
    total_requests: BTreeMap<ResourceId, u32>,
    /// Read-mode share of `total_requests`, per resource (empty when
    /// write-only).
    total_reads: BTreeMap<ResourceId, u32>,
}

// Hand-written so the two RW maps — absent from every pre-RW artifact, and
// surfaced as `Value::Null` by the vendored serde's missing-field lookup —
// default to empty instead of failing the whole task.
impl Deserialize for DagTask {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        fn map_or_empty<K: Deserialize + Ord, V: Deserialize>(
            value: &serde::Value,
        ) -> Result<BTreeMap<K, V>, serde::Error> {
            match value {
                serde::Value::Null => Ok(BTreeMap::new()),
                other => BTreeMap::deserialize(other),
            }
        }
        Ok(DagTask {
            id: TaskId::deserialize(value.field("id"))?,
            period: Time::deserialize(value.field("period"))?,
            deadline: Time::deserialize(value.field("deadline"))?,
            priority: Priority::deserialize(value.field("priority"))?,
            dag: Dag::deserialize(value.field("dag"))?,
            vertices: Vec::deserialize(value.field("vertices"))?,
            cs_lengths: BTreeMap::deserialize(value.field("cs_lengths"))?,
            read_cs_lengths: map_or_empty(value.field("read_cs_lengths"))?,
            wcet: Time::deserialize(value.field("wcet"))?,
            longest_path_len: Time::deserialize(value.field("longest_path_len"))?,
            longest_path: Vec::deserialize(value.field("longest_path"))?,
            total_requests: BTreeMap::deserialize(value.field("total_requests"))?,
            total_reads: map_or_empty(value.field("total_reads"))?,
        })
    }
}

impl DagTask {
    /// Starts building a task with implicit deadline `D_i = T_i`.
    pub fn builder(id: TaskId, period: Time) -> DagTaskBuilder {
        DagTaskBuilder {
            id,
            period,
            deadline: period,
            priority: Priority::MIN,
            dag: None,
            vertices: Vec::new(),
            cs_lengths: BTreeMap::new(),
            read_cs_lengths: BTreeMap::new(),
        }
    }

    /// The task identifier.
    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The minimum inter-arrival time `T_i`.
    #[inline]
    pub fn period(&self) -> Time {
        self.period
    }

    /// The relative deadline `D_i ≤ T_i`.
    #[inline]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The base priority `π_i` (greater is higher).
    #[inline]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Reassigns the base priority (driven by the task set's priority
    /// assignment policy — see [`TaskSet::with_priorities`](crate::TaskSet::with_priorities)).
    #[inline]
    pub fn set_priority(&mut self, priority: Priority) {
        self.priority = priority;
    }

    /// The precedence DAG `G_i`.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The vertex specifications, indexed by [`VertexId`].
    #[inline]
    pub fn vertices(&self) -> &[VertexSpec] {
        &self.vertices
    }

    /// The specification of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn vertex(&self, v: VertexId) -> &VertexSpec {
        &self.vertices[v.index()]
    }

    /// The total WCET `C_i = Σ_x C_{i,x}`.
    #[inline]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// The longest-path length `L*_i`.
    #[inline]
    pub fn longest_path_len(&self) -> Time {
        self.longest_path_len
    }

    /// One witness longest path.
    #[inline]
    pub fn longest_path(&self) -> &[VertexId] {
        &self.longest_path
    }

    /// The utilization `U_i = C_i / T_i`.
    pub fn utilization(&self) -> f64 {
        self.wcet.as_ns() as f64 / self.period.as_ns() as f64
    }

    /// The density `C_i / D_i`; a task is *heavy* when this exceeds 1.
    pub fn density(&self) -> f64 {
        self.wcet.as_ns() as f64 / self.deadline.as_ns() as f64
    }

    /// Returns `true` for heavy tasks (`C_i / D_i > 1`), which receive
    /// dedicated processors under federated scheduling.
    pub fn is_heavy(&self) -> bool {
        self.wcet > self.deadline
    }

    /// The resources this task uses (`Φ_i`), ascending.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.total_requests.keys().copied()
    }

    /// Returns `true` if the task issues any request to `resource`.
    pub fn uses_resource(&self, resource: ResourceId) -> bool {
        self.total_requests.contains_key(&resource)
    }

    /// The job-level maximum request count `N_{i,q} = Σ_x N_{i,x,q}`,
    /// summed over both access modes.
    pub fn total_requests(&self, resource: ResourceId) -> u32 {
        self.total_requests.get(&resource).copied().unwrap_or(0)
    }

    /// The job-level maximum *read* request count `N^R_{i,q}`.
    pub fn total_reads(&self, resource: ResourceId) -> u32 {
        self.total_reads.get(&resource).copied().unwrap_or(0)
    }

    /// The job-level maximum *write* request count `N^W_{i,q}`.
    pub fn total_writes(&self, resource: ResourceId) -> u32 {
        self.total_requests(resource) - self.total_reads(resource)
    }

    /// Returns `true` if any vertex of this task issues a read request
    /// (i.e. the task leaves the paper's write-only model).
    pub fn has_reads(&self) -> bool {
        !self.total_reads.is_empty()
    }

    /// The maximum *write* critical-section length `L_{i,q}`, or `None` if
    /// the task never uses the resource.
    pub fn cs_length(&self, resource: ResourceId) -> Option<Time> {
        self.cs_lengths.get(&resource).copied()
    }

    /// The maximum *read* critical-section length `L^R_{i,q}` (declared via
    /// [`DagTaskBuilder::read_critical_section`], defaulting to the write
    /// length), or `None` if the task never reads the resource.
    pub fn read_cs_length(&self, resource: ResourceId) -> Option<Time> {
        self.read_cs_lengths.get(&resource).copied()
    }

    /// The maximum critical-section length for one access mode; reads fall
    /// back to the write length when the task issues none.
    pub fn cs_length_mode(&self, resource: ResourceId, mode: AccessMode) -> Option<Time> {
        match mode {
            AccessMode::Write => self.cs_length(resource),
            AccessMode::Read => self.read_cs_length(resource).or(self.cs_length(resource)),
        }
    }

    /// Total worst-case time the task spends inside critical sections of
    /// `resource`: `N^W_{i,q} · L_{i,q} + N^R_{i,q} · L^R_{i,q}` (the
    /// paper's `N_{i,q} · L_{i,q}` when write-only).
    pub fn cs_demand(&self, resource: ResourceId) -> Time {
        let writes = match self.cs_lengths.get(&resource) {
            Some(&len) => len.saturating_mul(u64::from(self.total_writes(resource))),
            None => Time::ZERO,
        };
        let reads = match self.read_cs_lengths.get(&resource) {
            Some(&len) => len.saturating_mul(u64::from(self.total_reads(resource))),
            None => Time::ZERO,
        };
        writes.saturating_add(reads)
    }

    /// The non-critical WCET `C'_i = C_i − Σ_q N_{i,q} · L_{i,q}`.
    pub fn noncritical_wcet(&self) -> Time {
        let critical: Time = self.total_requests.keys().map(|&q| self.cs_demand(q)).sum();
        self.wcet.saturating_sub(critical)
    }

    /// The non-critical WCET of one vertex:
    /// `C'_{i,x} = C_{i,x} − Σ_q N_{i,x,q} · L_{i,q}`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vertex_noncritical_wcet(&self, v: VertexId) -> Time {
        let spec = &self.vertices[v.index()];
        let critical: Time = spec
            .requests()
            .iter()
            .map(|r| {
                self.cs_length_mode(r.resource, r.mode)
                    .expect("built task has a CS length for every request")
                    .saturating_mul(u64::from(r.count))
            })
            .sum();
        spec.wcet().saturating_sub(critical)
    }

    /// The per-vertex WCETs as a dense weight vector (for DAG algorithms).
    pub fn vertex_weights(&self) -> Vec<Time> {
        self.vertices.iter().map(VertexSpec::wcet).collect()
    }

    /// The resource utilization contribution
    /// `N_{i,q} · L_{i,q} / T_i` of this task to resource `q`.
    pub fn resource_utilization(&self, resource: ResourceId) -> f64 {
        self.cs_demand(resource).as_ns() as f64 / self.period.as_ns() as f64
    }
}

/// Builder for [`DagTask`] (see [`DagTask::builder`]).
#[derive(Debug, Clone)]
pub struct DagTaskBuilder {
    id: TaskId,
    period: Time,
    deadline: Time,
    priority: Priority,
    dag: Option<Dag>,
    vertices: Vec<VertexSpec>,
    cs_lengths: BTreeMap<ResourceId, Time>,
    read_cs_lengths: BTreeMap<ResourceId, Time>,
}

impl DagTaskBuilder {
    /// Sets the relative deadline (defaults to the period).
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the base priority (defaults to [`Priority::MIN`]; usually
    /// assigned later via the task set).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the precedence DAG.
    pub fn dag(mut self, dag: Dag) -> Self {
        self.dag = Some(dag);
        self
    }

    /// Appends the specification of the next vertex (in [`VertexId`] order).
    pub fn vertex(mut self, spec: VertexSpec) -> Self {
        self.vertices.push(spec);
        self
    }

    /// Appends several vertex specifications at once.
    pub fn vertex_specs(mut self, specs: impl IntoIterator<Item = VertexSpec>) -> Self {
        self.vertices.extend(specs);
        self
    }

    /// Declares the maximum *write* critical-section length `L_{i,q}` for a
    /// resource the task uses. Required for every requested resource, in
    /// either access mode.
    pub fn critical_section(mut self, resource: ResourceId, len: Time) -> Self {
        self.cs_lengths.insert(resource, len);
        self
    }

    /// Declares the maximum *read* critical-section length `L^R_{i,q}`.
    /// Optional: read requests fall back to the write length declared via
    /// [`DagTaskBuilder::critical_section`] — which is what keeps read
    /// generation RNG-free at the default axis settings.
    pub fn read_critical_section(mut self, resource: ResourceId, len: Time) -> Self {
        self.read_cs_lengths.insert(resource, len);
        self
    }

    /// Validates and builds the task.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when the timing parameters, DAG/vertex
    /// arity, or critical-section containment constraints are violated
    /// (see the variants for details). A default single-vertex chain DAG is
    /// used when [`DagTaskBuilder::dag`] was never called and exactly one
    /// vertex was supplied.
    pub fn build(self) -> Result<DagTask, ModelError> {
        let id = self.id;
        if self.period.is_zero() {
            return Err(ModelError::NonPositivePeriod { task: id });
        }
        if self.deadline.is_zero() || self.deadline > self.period {
            return Err(ModelError::InvalidDeadline {
                task: id,
                deadline: self.deadline,
                period: self.period,
            });
        }
        let dag = match self.dag {
            Some(d) => d,
            None => Dag::chain(self.vertices.len().max(1))?,
        };
        if self.vertices.len() != dag.vertex_count() {
            return Err(ModelError::VertexSpecCountMismatch {
                task: id,
                specs: self.vertices.len(),
                vertices: dag.vertex_count(),
            });
        }
        for (&q, &len) in self.cs_lengths.iter().chain(&self.read_cs_lengths) {
            if len.is_zero() {
                return Err(ModelError::NonPositiveCriticalSection {
                    task: id,
                    resource: q,
                });
            }
        }
        // Critical-section containment, per access mode:
        // C_{i,x} ≥ Σ_q (N^W_{i,x,q} · L_{i,q} + N^R_{i,x,q} · L^R_{i,q}).
        // Read lengths fall back to the (mandatory) write declaration.
        for (x, spec) in self.vertices.iter().enumerate() {
            let mut critical = Time::ZERO;
            for r in spec.requests() {
                let write_len = self.cs_lengths.get(&r.resource).copied().ok_or(
                    ModelError::MissingCriticalSectionLength {
                        task: id,
                        vertex: VertexId::new(x),
                        resource: r.resource,
                    },
                )?;
                let len = match r.mode {
                    AccessMode::Write => write_len,
                    AccessMode::Read => self
                        .read_cs_lengths
                        .get(&r.resource)
                        .copied()
                        .unwrap_or(write_len),
                };
                critical = critical.saturating_add(len.saturating_mul(u64::from(r.count)));
            }
            if spec.wcet() < critical {
                return Err(ModelError::VertexWcetBelowCriticalSections {
                    task: id,
                    vertex: VertexId::new(x),
                    wcet: spec.wcet(),
                    critical,
                });
            }
        }

        let wcet: Time = self.vertices.iter().map(VertexSpec::wcet).sum();
        let weights: Vec<Time> = self.vertices.iter().map(VertexSpec::wcet).collect();
        let (longest_path_len, longest_path) = dag.longest_path(&weights);

        let mut total_requests: BTreeMap<ResourceId, u32> = BTreeMap::new();
        let mut total_reads: BTreeMap<ResourceId, u32> = BTreeMap::new();
        for spec in &self.vertices {
            for r in spec.requests() {
                *total_requests.entry(r.resource).or_insert(0) += r.count;
                if r.mode.is_read() {
                    *total_reads.entry(r.resource).or_insert(0) += r.count;
                }
            }
        }
        // Drop declared critical sections for resources never requested so
        // `resources()` reflects actual usage; materialize the read length
        // (declared or defaulted to the write length) exactly for the
        // resources that carry reads.
        let cs_lengths: BTreeMap<ResourceId, Time> = self
            .cs_lengths
            .into_iter()
            .filter(|(q, _)| total_requests.contains_key(q))
            .collect();
        let declared_reads = self.read_cs_lengths;
        let read_cs_lengths: BTreeMap<ResourceId, Time> = total_reads
            .keys()
            .map(|&q| {
                let len = declared_reads.get(&q).copied().unwrap_or(cs_lengths[&q]);
                (q, len)
            })
            .collect();

        Ok(DagTask {
            id,
            period: self.period,
            deadline: self.deadline,
            priority: self.priority,
            dag,
            vertices: self.vertices,
            cs_lengths,
            read_cs_lengths,
            wcet,
            longest_path_len,
            longest_path,
            total_requests,
            total_reads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: usize) -> ResourceId {
        ResourceId::new(i)
    }

    fn simple_task() -> DagTask {
        // Diamond with one global-ish resource on the off-critical branch.
        let dag = Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        DagTask::builder(TaskId::new(0), Time::from_ms(100))
            .deadline(Time::from_ms(80))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_ms(10)))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(30),
                [RequestSpec::new(rid(0), 3)],
            ))
            .vertex(VertexSpec::new(Time::from_ms(50)))
            .vertex(VertexSpec::new(Time::from_ms(10)))
            .critical_section(rid(0), Time::from_us(100))
            .build()
            .unwrap()
    }

    #[test]
    fn derived_quantities() {
        let t = simple_task();
        assert_eq!(t.wcet(), Time::from_ms(100));
        assert_eq!(t.longest_path_len(), Time::from_ms(70)); // 10+50+10
        assert_eq!(t.total_requests(rid(0)), 3);
        assert_eq!(t.cs_length(rid(0)), Some(Time::from_us(100)));
        assert_eq!(t.cs_demand(rid(0)), Time::from_us(300));
        assert_eq!(
            t.noncritical_wcet(),
            Time::from_ms(100) - Time::from_us(300)
        );
        assert!((t.utilization() - 1.0).abs() < 1e-12);
        assert!(t.is_heavy()); // C=100ms > D=80ms
        assert!(t.uses_resource(rid(0)));
        assert!(!t.uses_resource(rid(1)));
        assert_eq!(t.resources().collect::<Vec<_>>(), vec![rid(0)]);
    }

    #[test]
    fn vertex_noncritical_wcet_subtracts_requests() {
        let t = simple_task();
        assert_eq!(
            t.vertex_noncritical_wcet(VertexId::new(1)),
            Time::from_ms(30) - Time::from_us(300)
        );
        assert_eq!(
            t.vertex_noncritical_wcet(VertexId::new(0)),
            Time::from_ms(10)
        );
    }

    #[test]
    fn builder_rejects_bad_timing() {
        let e = DagTask::builder(TaskId::new(1), Time::ZERO)
            .vertex(VertexSpec::new(Time::from_ms(1)))
            .build()
            .unwrap_err();
        assert!(matches!(e, ModelError::NonPositivePeriod { .. }));

        let e = DagTask::builder(TaskId::new(1), Time::from_ms(10))
            .deadline(Time::from_ms(20))
            .vertex(VertexSpec::new(Time::from_ms(1)))
            .build()
            .unwrap_err();
        assert!(matches!(e, ModelError::InvalidDeadline { .. }));
    }

    #[test]
    fn builder_rejects_arity_mismatch() {
        let dag = Dag::new(2, [(0, 1)]).unwrap();
        let e = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_ms(1)))
            .build()
            .unwrap_err();
        assert!(matches!(e, ModelError::VertexSpecCountMismatch { .. }));
    }

    #[test]
    fn builder_rejects_missing_or_zero_cs_length() {
        let e = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(1),
                [RequestSpec::new(rid(7), 1)],
            ))
            .build()
            .unwrap_err();
        assert!(matches!(e, ModelError::MissingCriticalSectionLength { .. }));

        let e = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(1),
                [RequestSpec::new(rid(0), 1)],
            ))
            .critical_section(rid(0), Time::ZERO)
            .build()
            .unwrap_err();
        assert!(matches!(e, ModelError::NonPositiveCriticalSection { .. }));
    }

    #[test]
    fn builder_rejects_vertex_smaller_than_its_critical_sections() {
        let e = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .vertex(VertexSpec::with_requests(
                Time::from_us(50),
                [RequestSpec::new(rid(0), 2)],
            ))
            .critical_section(rid(0), Time::from_us(40))
            .build()
            .unwrap_err();
        assert!(matches!(
            e,
            ModelError::VertexWcetBelowCriticalSections { .. }
        ));
    }

    #[test]
    fn default_dag_is_single_vertex() {
        let t = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .vertex(VertexSpec::new(Time::from_ms(2)))
            .build()
            .unwrap();
        assert_eq!(t.dag().vertex_count(), 1);
        assert_eq!(t.longest_path_len(), Time::from_ms(2));
        assert!(!t.is_heavy());
    }

    #[test]
    fn unused_cs_declarations_are_dropped() {
        let t = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .vertex(VertexSpec::new(Time::from_ms(2)))
            .critical_section(rid(3), Time::from_us(10))
            .build()
            .unwrap();
        assert_eq!(t.cs_length(rid(3)), None);
        assert_eq!(t.resources().count(), 0);
    }

    #[test]
    fn with_requests_merges_duplicates_and_drops_zero() {
        let v = VertexSpec::with_requests(
            Time::from_ms(1),
            [
                RequestSpec::new(rid(1), 2),
                RequestSpec::new(rid(1), 3),
                RequestSpec::new(rid(0), 0),
            ],
        );
        assert_eq!(v.requests().len(), 1);
        assert_eq!(v.request_count(rid(1)), 5);
        assert_eq!(v.request_count(rid(0)), 0);
    }

    #[test]
    fn with_requests_merges_per_mode() {
        let v = VertexSpec::with_requests(
            Time::from_ms(1),
            [
                RequestSpec::read(rid(0), 2),
                RequestSpec::write(rid(0), 1),
                RequestSpec::read(rid(0), 1),
            ],
        );
        // Write sorts before Read for the same resource.
        assert_eq!(v.requests().len(), 2);
        assert_eq!(v.requests()[0].mode, AccessMode::Write);
        assert_eq!(v.requests()[1].mode, AccessMode::Read);
        assert_eq!(v.request_count(rid(0)), 4);
        assert_eq!(v.request_count_mode(rid(0), AccessMode::Write), 1);
        assert_eq!(v.request_count_mode(rid(0), AccessMode::Read), 3);
        assert!(v.has_reads());
    }

    fn rw_task(read_len: Option<Time>) -> DagTask {
        let mut b = DagTask::builder(TaskId::new(0), Time::from_ms(100))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(10),
                [RequestSpec::write(rid(0), 2), RequestSpec::read(rid(0), 3)],
            ))
            .critical_section(rid(0), Time::from_us(100));
        if let Some(len) = read_len {
            b = b.read_critical_section(rid(0), len);
        }
        b.build().unwrap()
    }

    #[test]
    fn rw_counts_and_lengths() {
        let t = rw_task(Some(Time::from_us(40)));
        assert!(t.has_reads());
        assert_eq!(t.total_requests(rid(0)), 5);
        assert_eq!(t.total_writes(rid(0)), 2);
        assert_eq!(t.total_reads(rid(0)), 3);
        assert_eq!(t.cs_length(rid(0)), Some(Time::from_us(100)));
        assert_eq!(t.read_cs_length(rid(0)), Some(Time::from_us(40)));
        // 2·100µs writes + 3·40µs reads.
        assert_eq!(t.cs_demand(rid(0)), Time::from_us(320));
        assert_eq!(
            t.vertex_noncritical_wcet(VertexId::new(0)),
            Time::from_ms(10) - Time::from_us(320)
        );
    }

    #[test]
    fn read_length_defaults_to_write_length() {
        let t = rw_task(None);
        assert_eq!(t.read_cs_length(rid(0)), Some(Time::from_us(100)));
        assert_eq!(
            t.cs_length_mode(rid(0), AccessMode::Read),
            Some(Time::from_us(100))
        );
        assert_eq!(t.cs_demand(rid(0)), Time::from_us(500));
    }

    #[test]
    fn write_only_task_has_no_rw_state() {
        let t = simple_task();
        assert!(!t.has_reads());
        assert_eq!(t.total_writes(rid(0)), 3);
        assert_eq!(t.total_reads(rid(0)), 0);
        assert_eq!(t.read_cs_length(rid(0)), None);
        // Reads fall back to the write length even when the task has none.
        assert_eq!(
            t.cs_length_mode(rid(0), AccessMode::Read),
            Some(Time::from_us(100))
        );
    }

    /// Strips every RW-era member from a serialized value tree, producing
    /// exactly what a pre-RW build would have written.
    fn strip_rw_fields(v: &serde::Value) -> serde::Value {
        match v {
            serde::Value::Object(entries) => serde::Value::Object(
                entries
                    .iter()
                    .filter(|(k, _)| k != "mode" && k != "read_cs_lengths" && k != "total_reads")
                    .map(|(k, val)| (k.clone(), strip_rw_fields(val)))
                    .collect(),
            ),
            serde::Value::Array(items) => {
                serde::Value::Array(items.iter().map(strip_rw_fields).collect())
            }
            other => other.clone(),
        }
    }

    #[test]
    fn pre_rw_json_deserializes_unchanged() {
        use serde::{Deserialize, Serialize};
        let t = simple_task();
        let old_format = strip_rw_fields(&t.serialize());
        assert_ne!(old_format, t.serialize(), "stripper must remove something");
        let parsed = DagTask::deserialize(&old_format).unwrap();
        assert_eq!(parsed, t);
        // And a task that *does* read round-trips through the new format.
        let rw = rw_task(Some(Time::from_us(40)));
        assert_eq!(DagTask::deserialize(&rw.serialize()).unwrap(), rw);
    }

    #[test]
    fn access_mode_serde_defaults_to_write() {
        use serde::Deserialize;
        assert_eq!(
            AccessMode::deserialize(&serde::Value::Null).unwrap(),
            AccessMode::Write
        );
        assert_eq!(
            AccessMode::deserialize(&serde::Value::String("Read".into())).unwrap(),
            AccessMode::Read
        );
        assert!(AccessMode::deserialize(&serde::Value::U64(1)).is_err());
    }
}
