//! Directed acyclic graphs `G_i = ⟨V_i, E_i⟩` describing task structure.
//!
//! A [`Dag`] stores the precedence relation between the vertices of one
//! parallel task. Construction validates well-formedness (index bounds, no
//! self-loops, no duplicate edges, acyclicity), after which queries such as
//! topological order, source/sink vertices, weighted longest paths and
//! complete-path enumeration are available.

use core::fmt;
use core::ops::ControlFlow;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::VertexId;
use crate::time::Time;

/// The precedence DAG of one parallel task.
///
/// # Examples
///
/// ```
/// use dpcp_model::{Dag, VertexId};
///
/// // A diamond: v0 → {v1, v2} → v3.
/// let dag = Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)])?;
/// assert_eq!(dag.vertex_count(), 4);
/// assert_eq!(dag.heads(), &[VertexId::new(0)]);
/// assert_eq!(dag.tails(), &[VertexId::new(3)]);
/// assert_eq!(dag.path_count(), 2.0);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    vertex_count: usize,
    /// `succs[x]` lists the direct successors of vertex `x`, sorted.
    succs: Vec<Vec<VertexId>>,
    /// `preds[x]` lists the direct predecessors of vertex `x`, sorted.
    preds: Vec<Vec<VertexId>>,
    /// One fixed topological order (ascending positions).
    topo: Vec<VertexId>,
    /// Vertices with no predecessors, sorted.
    heads: Vec<VertexId>,
    /// Vertices with no successors, sorted.
    tails: Vec<VertexId>,
}

impl Dag {
    /// Builds a DAG over `vertex_count` vertices from an edge list of
    /// `(from, to)` raw indices.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyDag`] when `vertex_count == 0`,
    /// [`ModelError::VertexOutOfRange`] for out-of-bounds endpoints,
    /// [`ModelError::SelfLoop`] / [`ModelError::DuplicateEdge`] for malformed
    /// edges, and [`ModelError::CyclicGraph`] when the edges contain a cycle.
    pub fn new<I>(vertex_count: usize, edges: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        if vertex_count == 0 {
            return Err(ModelError::EmptyDag);
        }
        let mut succs = vec![Vec::new(); vertex_count];
        let mut preds = vec![Vec::new(); vertex_count];
        for (from, to) in edges {
            if from >= vertex_count || to >= vertex_count {
                return Err(ModelError::VertexOutOfRange {
                    vertex: from.max(to),
                    count: vertex_count,
                });
            }
            if from == to {
                return Err(ModelError::SelfLoop { vertex: from });
            }
            let to_id = VertexId::new(to);
            if succs[from].contains(&to_id) {
                return Err(ModelError::DuplicateEdge { from, to });
            }
            succs[from].push(to_id);
            preds[to].push(VertexId::new(from));
        }
        for list in succs.iter_mut().chain(preds.iter_mut()) {
            list.sort_unstable();
        }

        let topo =
            topological_order(vertex_count, &succs, &preds).ok_or(ModelError::CyclicGraph)?;

        let heads = (0..vertex_count)
            .filter(|&x| preds[x].is_empty())
            .map(VertexId::new)
            .collect();
        let tails = (0..vertex_count)
            .filter(|&x| succs[x].is_empty())
            .map(VertexId::new)
            .collect();

        Ok(Dag {
            vertex_count,
            succs,
            preds,
            topo,
            heads,
            tails,
        })
    }

    /// Builds the trivial DAG of a sequential task: a single chain
    /// `v_0 → v_1 → … → v_{n-1}`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyDag`] when `vertex_count == 0`.
    pub fn chain(vertex_count: usize) -> Result<Self, ModelError> {
        Dag::new(vertex_count, (1..vertex_count).map(|x| (x - 1, x)))
    }

    /// Number of vertices `|V_i|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Total number of directed edges `|E_i|`.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Iterates over all vertices in index order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_count).map(VertexId::new)
    }

    /// Direct successors of `v`, sorted by index.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn successors(&self, v: VertexId) -> &[VertexId] {
        &self.succs[v.index()]
    }

    /// Direct predecessors of `v`, sorted by index.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn predecessors(&self, v: VertexId) -> &[VertexId] {
        &self.preds[v.index()]
    }

    /// Returns `true` if the edge `from → to` exists.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.succs[from.index()].binary_search(&to).is_ok()
    }

    /// The head vertices (no predecessors), sorted.
    #[inline]
    pub fn heads(&self) -> &[VertexId] {
        &self.heads
    }

    /// Returns `true` when `v` has no predecessors (every complete path
    /// through `v` starts at `v`).
    #[inline]
    pub fn is_head(&self, v: VertexId) -> bool {
        self.preds[v.index()].is_empty()
    }

    /// Returns `true` when `v` has no successors (every complete path
    /// through `v` ends at `v`).
    #[inline]
    pub fn is_tail(&self, v: VertexId) -> bool {
        self.succs[v.index()].is_empty()
    }

    /// The tail vertices (no successors), sorted.
    #[inline]
    pub fn tails(&self) -> &[VertexId] {
        &self.tails
    }

    /// A fixed topological order of all vertices.
    #[inline]
    pub fn topological_order(&self) -> &[VertexId] {
        &self.topo
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.preds[v.index()].len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.succs[v.index()].len()
    }

    /// Computes the longest (critical) path under per-vertex `weights`,
    /// returning the total weight `L*` and one witness path.
    ///
    /// Every complete path starts at a head and ends at a tail, so the
    /// returned path is complete in the paper's sense.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != vertex_count()`.
    pub fn longest_path(&self, weights: &[Time]) -> (Time, Vec<VertexId>) {
        assert_eq!(
            weights.len(),
            self.vertex_count,
            "one weight per vertex required"
        );
        // dist[x] = weight of the heaviest path ending at x (inclusive).
        let mut dist = vec![Time::ZERO; self.vertex_count];
        let mut best_pred: Vec<Option<VertexId>> = vec![None; self.vertex_count];
        for &v in &self.topo {
            let x = v.index();
            let mut incoming = Time::ZERO;
            for &p in &self.preds[x] {
                if dist[p.index()] >= incoming {
                    // `>=` keeps a deterministic witness (max index pred wins
                    // only when strictly heavier paths tie).
                    if dist[p.index()] > incoming || best_pred[x].is_none() {
                        best_pred[x] = Some(p);
                    }
                    incoming = dist[p.index()];
                }
            }
            dist[x] = incoming.saturating_add(weights[x]);
        }
        let end = self
            .tails
            .iter()
            .copied()
            .max_by_key(|t| dist[t.index()])
            .expect("a DAG always has at least one tail");
        let mut path = vec![end];
        let mut cur = end;
        while let Some(p) = best_pred[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        (dist[end.index()], path)
    }

    /// Counts complete head-to-tail paths (as `f64`, since counts explode
    /// combinatorially for dense DAGs).
    pub fn path_count(&self) -> f64 {
        let mut count = vec![0.0f64; self.vertex_count];
        for &v in self.topo.iter().rev() {
            let x = v.index();
            count[x] = if self.succs[x].is_empty() {
                1.0
            } else {
                self.succs[x].iter().map(|s| count[s.index()]).sum()
            };
        }
        self.heads.iter().map(|h| count[h.index()]).sum()
    }

    /// Enumerates complete paths depth-first, invoking `visit` with each
    /// head-to-tail vertex sequence. Returning [`ControlFlow::Break`] stops
    /// the enumeration early (used to cap analysis cost).
    ///
    /// # Examples
    ///
    /// ```
    /// use core::ops::ControlFlow;
    /// use dpcp_model::Dag;
    ///
    /// let dag = Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)])?;
    /// let mut n = 0usize;
    /// dag.for_each_path(|path| {
    ///     n += 1;
    ///     assert_eq!(path.len(), 3);
    ///     ControlFlow::<()>::Continue(())
    /// });
    /// assert_eq!(n, 2);
    /// # Ok::<(), dpcp_model::ModelError>(())
    /// ```
    pub fn for_each_path<B>(
        &self,
        mut visit: impl FnMut(&[VertexId]) -> ControlFlow<B>,
    ) -> Option<B> {
        let mut stack: Vec<VertexId> = Vec::with_capacity(self.vertex_count);
        for &h in &self.heads {
            if let ControlFlow::Break(b) = self.dfs_paths(h, &mut stack, &mut visit) {
                return Some(b);
            }
        }
        None
    }

    fn dfs_paths<B>(
        &self,
        v: VertexId,
        stack: &mut Vec<VertexId>,
        visit: &mut impl FnMut(&[VertexId]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        stack.push(v);
        let result = if self.succs[v.index()].is_empty() {
            visit(stack)
        } else {
            let mut flow = ControlFlow::Continue(());
            for &s in &self.succs[v.index()] {
                flow = self.dfs_paths(s, stack, visit);
                if flow.is_break() {
                    break;
                }
            }
            flow
        };
        stack.pop();
        result
    }

    /// Collects every complete path. Intended for small DAGs (tests,
    /// examples); analysis code uses [`Dag::for_each_path`] with a cap.
    pub fn all_paths(&self) -> Vec<Vec<VertexId>> {
        let mut out = Vec::new();
        self.for_each_path(|p| {
            out.push(p.to_vec());
            ControlFlow::<()>::Continue(())
        });
        out
    }

    /// Returns `true` when `path` is a complete path of this DAG: starts at
    /// a head, ends at a tail, and each consecutive pair is an edge.
    pub fn is_complete_path(&self, path: &[VertexId]) -> bool {
        let (Some(&first), Some(&last)) = (path.first(), path.last()) else {
            return false;
        };
        if !self.heads.contains(&first) || !self.tails.contains(&last) {
            return false;
        }
        path.windows(2).all(|w| self.has_edge(w[0], w[1]))
    }
}

impl fmt::Display for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dag({} vertices, {} edges)",
            self.vertex_count,
            self.edge_count()
        )
    }
}

/// Kahn's algorithm; `None` when a cycle prevents a full ordering.
fn topological_order(
    n: usize,
    succs: &[Vec<VertexId>],
    preds: &[Vec<VertexId>],
) -> Option<Vec<VertexId>> {
    let mut in_deg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&x| in_deg[x] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut next = 0;
    while next < queue.len() {
        let x = queue[next];
        next += 1;
        order.push(VertexId::new(x));
        for &s in &succs[x] {
            in_deg[s.index()] -= 1;
            if in_deg[s.index()] == 0 {
                queue.push(s.index());
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(Dag::new(0, []), Err(ModelError::EmptyDag)));
        assert!(matches!(
            Dag::new(2, [(0, 5)]),
            Err(ModelError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            Dag::new(2, [(1, 1)]),
            Err(ModelError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            Dag::new(2, [(0, 1), (0, 1)]),
            Err(ModelError::DuplicateEdge { from: 0, to: 1 })
        ));
        assert!(matches!(
            Dag::new(3, [(0, 1), (1, 2), (2, 0)]),
            Err(ModelError::CyclicGraph)
        ));
    }

    #[test]
    fn single_vertex_is_head_and_tail() {
        let dag = Dag::new(1, []).unwrap();
        assert_eq!(dag.heads(), &[VertexId::new(0)]);
        assert_eq!(dag.tails(), &[VertexId::new(0)]);
        assert_eq!(dag.path_count(), 1.0);
        assert_eq!(dag.all_paths(), vec![vec![VertexId::new(0)]]);
    }

    #[test]
    fn chain_shape() {
        let dag = Dag::chain(4).unwrap();
        assert_eq!(dag.edge_count(), 3);
        assert_eq!(dag.heads(), &[VertexId::new(0)]);
        assert_eq!(dag.tails(), &[VertexId::new(3)]);
        assert_eq!(dag.path_count(), 1.0);
    }

    #[test]
    fn degrees_and_edges() {
        let dag = diamond();
        assert_eq!(dag.out_degree(VertexId::new(0)), 2);
        assert_eq!(dag.in_degree(VertexId::new(3)), 2);
        assert!(dag.is_head(VertexId::new(0)));
        assert!(!dag.is_head(VertexId::new(1)));
        assert!(dag.is_tail(VertexId::new(3)));
        assert!(!dag.is_tail(VertexId::new(2)));
        assert!(dag.has_edge(VertexId::new(0), VertexId::new(1)));
        assert!(!dag.has_edge(VertexId::new(1), VertexId::new(2)));
    }

    #[test]
    fn topological_order_respects_edges() {
        let dag = diamond();
        let topo = dag.topological_order();
        let pos = |v: VertexId| topo.iter().position(|&x| x == v).unwrap();
        for v in dag.vertices() {
            for &s in dag.successors(v) {
                assert!(pos(v) < pos(s));
            }
        }
    }

    #[test]
    fn longest_path_picks_heavier_branch() {
        let dag = diamond();
        let w = |ns: [u64; 4]| ns.map(Time::from_ns).to_vec();
        let (len, path) = dag.longest_path(&w([1, 10, 2, 1]));
        assert_eq!(len, Time::from_ns(12));
        assert_eq!(
            path,
            vec![VertexId::new(0), VertexId::new(1), VertexId::new(3)]
        );
        let (len2, path2) = dag.longest_path(&w([1, 2, 10, 1]));
        assert_eq!(len2, Time::from_ns(12));
        assert_eq!(
            path2,
            vec![VertexId::new(0), VertexId::new(2), VertexId::new(3)]
        );
    }

    #[test]
    fn longest_path_matches_brute_force_on_diamond() {
        let dag = diamond();
        let weights: Vec<Time> = [5u64, 3, 4, 2].map(Time::from_ns).to_vec();
        let best = dag
            .all_paths()
            .into_iter()
            .map(|p| p.iter().map(|v| weights[v.index()]).sum::<Time>())
            .max()
            .unwrap();
        assert_eq!(dag.longest_path(&weights).0, best);
    }

    #[test]
    fn path_enumeration_is_complete_and_valid() {
        let dag = Dag::new(6, [(0, 2), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        let paths = dag.all_paths();
        assert_eq!(paths.len() as f64, dag.path_count());
        for p in &paths {
            assert!(dag.is_complete_path(p));
        }
        // 2 heads × 2 middle branches = 4 complete paths.
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn for_each_path_early_stop() {
        let dag = diamond();
        let mut seen = 0;
        let out = dag.for_each_path(|_| {
            seen += 1;
            ControlFlow::Break("stop")
        });
        assert_eq!(seen, 1);
        assert_eq!(out, Some("stop"));
    }

    #[test]
    fn is_complete_path_rejects_fragments() {
        let dag = diamond();
        let v = VertexId::new;
        assert!(dag.is_complete_path(&[v(0), v(1), v(3)]));
        assert!(!dag.is_complete_path(&[v(1), v(3)])); // starts mid-graph
        assert!(!dag.is_complete_path(&[v(0), v(1)])); // ends mid-graph
        assert!(!dag.is_complete_path(&[v(0), v(3)])); // not an edge
        assert!(!dag.is_complete_path(&[]));
    }

    #[test]
    fn path_count_on_dense_layers() {
        // 3 layers of 2 fully connected: 2·2·2 = 8 paths... but heads are the
        // first layer (2), so count = 2·2·2 = 8.
        let edges = [
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
        ];
        let dag = Dag::new(6, edges).unwrap();
        assert_eq!(dag.path_count(), 8.0);
        assert_eq!(dag.all_paths().len(), 8);
    }

    #[test]
    fn display_mentions_size() {
        assert_eq!(diamond().to_string(), "Dag(4 vertices, 4 edges)");
    }
}
