//! Task sets `τ = {τ_1, …, τ_n}` and their shared-resource universe.
//!
//! A [`TaskSet`] owns the tasks and the resource universe
//! `Φ = {ℓ_1, …, ℓ_{n_r}}`, classifies each resource as *local* (used by at
//! most one task) or *global* (shared by several), and assigns unique base
//! priorities (Rate-Monotonic by default, as in the paper's evaluation).

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{ResourceId, TaskId};
use crate::priority::{Priority, PriorityAssignment};
use crate::task::DagTask;
use crate::time::Time;

/// Whether a resource is shared within one task or across tasks
/// (Sec. III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceScope {
    /// Used by the vertices of at most one task; requests execute locally.
    Local,
    /// Used by two or more tasks; requests execute on a designated
    /// processor via an agent.
    Global,
}

/// An immutable set of parallel tasks plus its resource universe.
///
/// # Examples
///
/// ```
/// use dpcp_model::{DagTask, ResourceId, TaskId, TaskSet, Time, VertexSpec};
///
/// let t0 = DagTask::builder(TaskId::new(0), Time::from_ms(10))
///     .vertex(VertexSpec::new(Time::from_ms(2)))
///     .build()?;
/// let t1 = DagTask::builder(TaskId::new(1), Time::from_ms(20))
///     .vertex(VertexSpec::new(Time::from_ms(5)))
///     .build()?;
/// let ts = TaskSet::new(vec![t0, t1], 0)?;
/// assert_eq!(ts.len(), 2);
/// // RM: the shorter-period task τ0 got the higher priority.
/// assert!(ts.task(TaskId::new(0)).priority() > ts.task(TaskId::new(1)).priority());
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TaskSet {
    /// Shared immutable payload: a task set never changes after
    /// construction, so `Clone` is an `Arc` bump and clones compare equal
    /// by pointer before any deep walk — what makes the session-level
    /// signature-cache key (a stored clone) essentially free.
    inner: std::sync::Arc<TaskSetInner>,
}

impl PartialEq for TaskSet {
    fn eq(&self, other: &Self) -> bool {
        // Clones share the payload: pointer equality settles the common
        // case before any structural walk.
        std::sync::Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct TaskSetInner {
    tasks: Vec<DagTask>,
    resource_count: usize,
    /// `users[q]` = tasks using `ℓ_q` (the paper's `τ(ℓ_q)`), sorted.
    users: Vec<Vec<TaskId>>,
}

// The wire format is exactly the pre-`Arc` struct layout (`tasks` /
// `resource_count` / `users`), so every serialized artifact — DTOs,
// campaign checkpoints, fuzz repro bundles, golden files — is unchanged.
impl Serialize for TaskSet {
    fn serialize(&self) -> serde::Value {
        self.inner.serialize()
    }
}

impl Deserialize for TaskSet {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(TaskSet {
            inner: std::sync::Arc::new(TaskSetInner::deserialize(value)?),
        })
    }
}

impl TaskSet {
    /// Builds a task set over `resource_count` resources, assigning
    /// Rate-Monotonic priorities.
    ///
    /// Task identifiers must be dense (`τ_0 … τ_{n-1}` in order); every
    /// resource referenced by a task must lie inside the universe.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonDenseTaskIds`] or
    /// [`ModelError::ResourceOutOfRange`] on malformed input.
    pub fn new(tasks: Vec<DagTask>, resource_count: usize) -> Result<Self, ModelError> {
        Self::with_priorities(tasks, resource_count, PriorityAssignment::RateMonotonic)
    }

    /// Builds a task set with an explicit priority-assignment policy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TaskSet::new`].
    pub fn with_priorities(
        mut tasks: Vec<DagTask>,
        resource_count: usize,
        assignment: PriorityAssignment,
    ) -> Result<Self, ModelError> {
        for (i, t) in tasks.iter().enumerate() {
            if t.id() != TaskId::new(i) {
                return Err(ModelError::NonDenseTaskIds {
                    expected: TaskId::new(i),
                    found: t.id(),
                });
            }
            for q in t.resources() {
                if q.index() >= resource_count {
                    return Err(ModelError::ResourceOutOfRange {
                        task: t.id(),
                        resource: q,
                        count: resource_count,
                    });
                }
            }
        }
        assign_priorities(&mut tasks, assignment);

        let mut users = vec![Vec::new(); resource_count];
        for t in &tasks {
            for q in t.resources() {
                users[q.index()].push(t.id());
            }
        }
        Ok(TaskSet {
            inner: std::sync::Arc::new(TaskSetInner {
                tasks,
                resource_count,
                users,
            }),
        })
    }

    /// Number of tasks `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.tasks.len()
    }

    /// `true` when the set contains no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.tasks.is_empty()
    }

    /// Size of the resource universe `n_r`.
    #[inline]
    pub fn resource_count(&self) -> usize {
        self.inner.resource_count
    }

    /// All tasks in identifier order.
    #[inline]
    pub fn tasks(&self) -> &[DagTask] {
        &self.inner.tasks
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> impl Iterator<Item = &DagTask> {
        self.inner.tasks.iter()
    }

    /// One task by identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range.
    #[inline]
    pub fn task(&self, id: TaskId) -> &DagTask {
        &self.inner.tasks[id.index()]
    }

    /// All resource identifiers in the universe, ascending.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        (0..self.inner.resource_count).map(ResourceId::new)
    }

    /// The tasks using `ℓ_q` (the paper's `τ(ℓ_q)`), ascending.
    ///
    /// # Panics
    ///
    /// Panics if the resource is out of range.
    #[inline]
    pub fn users_of(&self, resource: ResourceId) -> &[TaskId] {
        &self.inner.users[resource.index()]
    }

    /// Classifies a resource as local or global (Sec. III-A); unused
    /// resources count as local (they constrain nothing).
    pub fn resource_scope(&self, resource: ResourceId) -> ResourceScope {
        if self.users_of(resource).len() >= 2 {
            ResourceScope::Global
        } else {
            ResourceScope::Local
        }
    }

    /// Returns `true` if `ℓ_q` is shared by two or more tasks.
    pub fn is_global(&self, resource: ResourceId) -> bool {
        self.resource_scope(resource) == ResourceScope::Global
    }

    /// The global resources `Φ^G`, ascending.
    pub fn global_resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.resources().filter(|&q| self.is_global(q))
    }

    /// The local resources `Φ^L` that are actually used, ascending.
    pub fn local_resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.resources()
            .filter(|&q| !self.is_global(q) && !self.users_of(q).is_empty())
    }

    /// The resource utilization
    /// `u^Φ_q = Σ_{τ_j ∈ τ} N_{j,q} · L_{j,q} / T_j` (Sec. V).
    pub fn resource_utilization(&self, resource: ResourceId) -> f64 {
        self.inner
            .tasks
            .iter()
            .map(|t| t.resource_utilization(resource))
            .sum()
    }

    /// Total task utilization `Σ_i U_i`.
    pub fn total_utilization(&self) -> f64 {
        self.inner.tasks.iter().map(DagTask::utilization).sum()
    }

    /// Returns `true` if any task issues read requests — i.e. the set
    /// leaves the paper's write-only model and needs an RW-capable
    /// protocol analysis.
    pub fn has_reads(&self) -> bool {
        self.inner.tasks.iter().any(DagTask::has_reads)
    }

    /// The priority ceiling of a *global* resource as a base-priority level:
    /// `max_{τ_j ∈ τ(ℓ_q)} π_j` (the `Π_q − π^H` part of Sec. III-C).
    ///
    /// Returns `None` for resources no task uses.
    pub fn ceiling(&self, resource: ResourceId) -> Option<Priority> {
        self.users_of(resource)
            .iter()
            .map(|&j| self.task(j).priority())
            .max()
    }

    /// The tasks in decreasing priority order (the analysis order of
    /// Algorithm 1 line 9).
    pub fn by_decreasing_priority(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self.inner.tasks.iter().map(DagTask::id).collect();
        ids.sort_by_key(|&i| core::cmp::Reverse(self.task(i).priority()));
        ids
    }

    /// The minimal processor demand of federated scheduling:
    /// `Σ_i ⌈(C_i − L*_i) / (D_i − L*_i)⌉` over heavy tasks, counting light
    /// tasks as 1 (used by feasibility pre-checks).
    pub fn min_processor_demand(&self) -> usize {
        self.inner.tasks.iter().map(initial_processors).sum()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a DagTask;
    type IntoIter = core::slice::Iter<'a, DagTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.tasks.iter()
    }
}

/// The initial federated processor assignment of Algorithm 1 line 3:
/// `m_i = ⌈(C_i − L*_i) / (D_i − L*_i)⌉`, clamped to at least 1.
///
/// # Panics
///
/// Panics if `D_i ≤ L*_i` for a heavy task — such a task cannot meet its
/// deadline on any number of processors and should have been filtered by
/// generation (the paper enforces `L*_i < D_i / 2`).
pub fn initial_processors(task: &DagTask) -> usize {
    if !task.is_heavy() {
        return 1;
    }
    let num = task.wcet().saturating_sub(task.longest_path_len()).as_ns();
    let den = task
        .deadline()
        .checked_sub(task.longest_path_len())
        .unwrap_or_else(|| {
            panic!(
                "heavy task {} has L* {} ≥ deadline {}",
                task.id(),
                task.longest_path_len(),
                task.deadline()
            )
        })
        .as_ns();
    assert!(den > 0, "heavy task with L* = D cannot be scheduled");
    usize::try_from(num.div_ceil(den))
        .unwrap_or(usize::MAX)
        .max(1)
}

fn assign_priorities(tasks: &mut [DagTask], assignment: PriorityAssignment) {
    let n = tasks.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Sort descending by the priority key so position 0 gets the highest
    // priority; ties broken by task id for determinism and uniqueness.
    match assignment {
        PriorityAssignment::RateMonotonic => {
            order.sort_by_key(|&i| (tasks[i].period(), tasks[i].id()));
        }
        PriorityAssignment::DeadlineMonotonic => {
            order.sort_by_key(|&i| (tasks[i].deadline(), tasks[i].id()));
        }
    }
    for (rank, &i) in order.iter().enumerate() {
        // rank 0 = shortest period = highest priority level (n − rank).
        tasks[i].set_priority(Priority::new((n - rank) as u32));
    }
}

/// Convenience: total WCET of a set of tasks.
pub fn total_wcet<'a>(tasks: impl IntoIterator<Item = &'a DagTask>) -> Time {
    tasks.into_iter().map(DagTask::wcet).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{RequestSpec, VertexSpec};

    fn rid(i: usize) -> ResourceId {
        ResourceId::new(i)
    }

    fn task_using(id: usize, period_ms: u64, resource: Option<(usize, u32)>) -> DagTask {
        let mut b = DagTask::builder(TaskId::new(id), Time::from_ms(period_ms));
        let v = match resource {
            Some((q, n)) => {
                VertexSpec::with_requests(Time::from_ms(2), [RequestSpec::new(rid(q), n)])
            }
            None => VertexSpec::new(Time::from_ms(2)),
        };
        b = b.vertex(v);
        if let Some((q, _)) = resource {
            b = b.critical_section(rid(q), Time::from_us(20));
        }
        b.build().unwrap()
    }

    fn three_task_set() -> TaskSet {
        TaskSet::new(
            vec![
                task_using(0, 30, Some((0, 2))),
                task_using(1, 10, Some((0, 1))),
                task_using(2, 20, Some((1, 3))),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn rm_priorities_are_unique_and_period_ordered() {
        let ts = three_task_set();
        let p = |i: usize| ts.task(TaskId::new(i)).priority();
        assert!(p(1) > p(2) && p(2) > p(0)); // periods 10 < 20 < 30
        let mut levels: Vec<u32> = ts.iter().map(|t| t.priority().level()).collect();
        levels.sort_unstable();
        levels.dedup();
        assert_eq!(levels.len(), 3);
    }

    #[test]
    fn dm_priorities_follow_deadlines() {
        let t1 = task_using(1, 30, None);
        // Same period as t1 but a shorter deadline.
        let t0 = DagTask::builder(TaskId::new(0), Time::from_ms(30))
            .deadline(Time::from_ms(5))
            .vertex(VertexSpec::new(Time::from_ms(2)))
            .build()
            .unwrap();
        let ts = TaskSet::with_priorities(vec![t0, t1], 0, PriorityAssignment::DeadlineMonotonic)
            .unwrap();
        assert!(ts.task(TaskId::new(0)).priority() > ts.task(TaskId::new(1)).priority());
    }

    #[test]
    fn resource_classification() {
        let ts = three_task_set();
        assert!(ts.is_global(rid(0))); // τ0 and τ1 share it
        assert!(!ts.is_global(rid(1))); // only τ2
        assert_eq!(ts.global_resources().collect::<Vec<_>>(), vec![rid(0)]);
        assert_eq!(ts.local_resources().collect::<Vec<_>>(), vec![rid(1)]);
        assert_eq!(ts.users_of(rid(0)), &[TaskId::new(0), TaskId::new(1)]);
        assert_eq!(ts.resource_scope(rid(1)), ResourceScope::Local);
    }

    #[test]
    fn resource_utilization_sums_task_demands() {
        let ts = three_task_set();
        // τ0: 2·20µs / 30ms, τ1: 1·20µs / 10ms.
        let expected = 40e-6 / 30e-3 + 20e-6 / 10e-3;
        assert!((ts.resource_utilization(rid(0)) - expected).abs() < 1e-12);
    }

    #[test]
    fn ceiling_is_highest_user_priority() {
        let ts = three_task_set();
        // ℓ0 is used by τ0 (lowest) and τ1 (highest): ceiling = π(τ1).
        assert_eq!(ts.ceiling(rid(0)), Some(ts.task(TaskId::new(1)).priority()));
        assert_eq!(ts.ceiling(rid(1)), Some(ts.task(TaskId::new(2)).priority()));
    }

    #[test]
    fn decreasing_priority_order() {
        let ts = three_task_set();
        assert_eq!(
            ts.by_decreasing_priority(),
            vec![TaskId::new(1), TaskId::new(2), TaskId::new(0)]
        );
    }

    #[test]
    fn rejects_non_dense_ids() {
        let e = TaskSet::new(vec![task_using(1, 10, None)], 0).unwrap_err();
        assert!(matches!(e, ModelError::NonDenseTaskIds { .. }));
    }

    #[test]
    fn rejects_out_of_range_resources() {
        let e = TaskSet::new(vec![task_using(0, 10, Some((5, 1)))], 2).unwrap_err();
        assert!(matches!(e, ModelError::ResourceOutOfRange { .. }));
    }

    #[test]
    fn initial_processors_formula() {
        // C = 100, L* = 40, D = 70 ⇒ ⌈60/30⌉ = 2.
        let dag = Dag::chain(2).unwrap();
        let t = DagTask::builder(TaskId::new(0), Time::from_ms(100))
            .deadline(Time::from_ms(70))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_ms(40)))
            .vertex(VertexSpec::new(Time::from_ms(60)))
            .build()
            .unwrap();
        // Chain means L* = C here; rebuild as parallel pair instead.
        let dag = Dag::new(2, []).unwrap();
        let t2 = DagTask::builder(TaskId::new(0), Time::from_ms(100))
            .deadline(Time::from_ms(70))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_ms(40)))
            .vertex(VertexSpec::new(Time::from_ms(60)))
            .build()
            .unwrap();
        assert_eq!(t2.longest_path_len(), Time::from_ms(60));
        assert_eq!(initial_processors(&t2), 4); // ⌈(100−60)/(70−60)⌉
        assert!(t.is_heavy());
        // Light task gets one processor.
        let light = task_using(0, 100, None);
        assert_eq!(initial_processors(&light), 1);
    }

    #[test]
    fn totals() {
        let ts = three_task_set();
        assert_eq!(total_wcet(ts.iter()), Time::from_ms(6));
        let expected = 2.0 / 30.0 + 2.0 / 10.0 + 2.0 / 20.0;
        assert!((ts.total_utilization() - expected).abs() < 1e-12);
    }

    use crate::graph::Dag;
}
