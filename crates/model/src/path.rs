//! Complete paths `λ_i` and their analysis signatures.
//!
//! The per-path WCRT bound of Sec. IV depends on a path only through its
//! length `L(λ_i)`, its non-critical length, and its per-resource request
//! counts `N^λ_{i,q}`. [`PathSignature`] captures exactly that triple, so
//! paths that agree on it are interchangeable for the analysis and can be
//! deduplicated — which is what makes enumerating the (combinatorially
//! many) complete paths of dense DAGs tractable.
//!
//! # Two enumerators
//!
//! - [`enumerate_signatures_capped`] walks every complete path depth-first
//!   and dedups at the sink — the retained reference implementation, but
//!   exponential in path count on dense DAGs (hence its visit cap).
//! - [`enumerate_signatures_dp_capped`] computes the same set directly in
//!   the *signature domain*: vertices are processed in topological order,
//!   each vertex holds the set of distinct partial signatures of the
//!   head-to-here prefixes, and identical partials are collapsed **at every
//!   merge point** before they fan out again. Work is bounded by
//!   `Σ_v |frontier(v)| · out-degree(v)` — the number of *distinct* partial
//!   signatures, not the number of paths — which turns the `2^k` paths of a
//!   `k`-diamond chain into `O(k)` extensions when the branches agree.
//!
//! Both produce bit-identical [`PathSignatures`] (same sorted set, same
//! `truncated` flag) whenever neither hits a cap; the seeded equivalence
//! sweep in `tests/signature_dp.rs` asserts this.
//!
//! # Dominance pruning (opt-in) — monotonicity note
//!
//! [`prune_dominated_signatures`] drops a signature `A` when another
//! signature `B` with the **identical request vector** has `L(A) ≤ L(B)`
//! and critical content `L(A) − noncrit(A) ≤ L(B) − noncrit(B)`. With
//! equal `N^λ` vectors every request-dependent term of Theorem 1 (the
//! per-request bounds `W_{i,q}`, the ε table of Eq. 4, Lemma 4's `b_i`,
//! the off-path request terms of Lemma 5 and Eq. 9) coincides for `A` and
//! `B`; the remaining dependence is `L(λ)` (the recurrence's additive
//! start, weight 1) and the off-path non-critical work `C'_i − noncrit(λ)`
//! inside Lemma 5, which enters **divided by `m_i` under a ceiling**. For
//! every window `r`:
//!
//! `rhs_B(r) − rhs_A(r) ≥ (L(B) − L(A)) − (noncrit(B) − noncrit(A))`
//!
//! because `⌈(S + t)/m⌉ ≤ ⌈S/m⌉ + t` for integer `t ≥ 0, m ≥ 1`. The
//! right-hand side equals `(L(B) − noncrit(B)) − (L(A) − noncrit(A)) ≥ 0`
//! under the rule above, so `rhs_A(r) ≤ rhs_B(r)` everywhere, the least
//! fixed point satisfies `r_A ≤ r_B`, and `A` can never be the binding
//! (maximal) EP path — dropping it leaves the task bound unchanged. For
//! signatures of actual task paths the critical content is a *function of
//! the request vector* (`L − noncrit = Σ_q N^λ_q · L_{i,q}`), so within a
//! profile group the rule degenerates to `L(A) ≤ L(B)`: only the longest
//! path per distinct request vector survives.
//!
//! The relation deliberately does **not** compare across different request
//! vectors: the bound is *not* monotone in `N^λ_{i,q}` alone. An extra
//! on-path request raises ε/Lemma-2 terms but *lowers* the off-path terms
//! `(N_{i,q} − N^λ_{i,q}) · L_{i,q}` of Lemmas 4/5 and Eq. 9, so a
//! component-wise `≤` on request counts can flip either way (that mixed
//! monotonicity is exactly why the EN variant maximises each term
//! separately). Pruning with mismatched request vectors would be unsound.
//!
//! One subtlety: pruning cannot turn a divergent task schedulable. With
//! equal request vectors `A` and `B` share their `W_{i,q}` recurrences, and
//! `rhs_A ≤ rhs_B` pointwise means `B`'s fixed point (or divergence beyond
//! the deadline) dominates `A`'s. The only caveat is the iteration budget:
//! a pruned `A` could in principle need more iterates than `B` under an
//! artificially tiny `max_fixpoint_iterations`; the default budget (512)
//! together with the demand-table early exit decides far earlier.

use core::ops::ControlFlow;
use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::ids::{ResourceId, VertexId};
use crate::task::DagTask;
use crate::time::Time;

/// The analysis-relevant abstraction of one complete path.
///
/// # Examples
///
/// ```
/// use dpcp_model::fig1;
/// use dpcp_model::path::PathSignature;
///
/// let (ti, _tj) = fig1::tasks()?;
/// // The longest path of the Fig. 1 task G_i has length 10 (time units).
/// let sig = PathSignature::from_path(&ti, ti.longest_path());
/// assert_eq!(sig.len(), fig1::unit() * 10);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSignature {
    len: Time,
    noncritical: Time,
    /// `N^λ_{i,q}` per requested resource; sorted, zero counts omitted.
    requests: Vec<(ResourceId, u32)>,
}

impl PathSignature {
    /// Computes the signature of `path` (a vertex sequence of `task`).
    ///
    /// # Panics
    ///
    /// Panics if a vertex index is out of range for the task.
    pub fn from_path(task: &DagTask, path: &[VertexId]) -> Self {
        let mut len = Time::ZERO;
        let mut noncritical = Time::ZERO;
        let mut counts: Vec<(ResourceId, u32)> = Vec::new();
        for &v in path {
            let spec = task.vertex(v);
            len = len.saturating_add(spec.wcet());
            noncritical = noncritical.saturating_add(task.vertex_noncritical_wcet(v));
            for r in spec.requests() {
                match counts.binary_search_by_key(&r.resource, |&(q, _)| q) {
                    Ok(i) => counts[i].1 += r.count,
                    Err(i) => counts.insert(i, (r.resource, r.count)),
                }
            }
        }
        PathSignature {
            len,
            noncritical,
            requests: counts,
        }
    }

    /// The path length `L(λ)` (sum of vertex WCETs on the path).
    #[inline]
    pub fn len(&self) -> Time {
        self.len
    }

    /// `true` when the path has zero length (degenerate, only possible with
    /// zero-WCET vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len.is_zero()
    }

    /// The non-critical portion of the path length,
    /// `Σ_{v ∈ λ} C'_{i,x}`.
    #[inline]
    pub fn noncritical_len(&self) -> Time {
        self.noncritical
    }

    /// The per-resource path request counts `N^λ_{i,q}` (sorted, non-zero).
    #[inline]
    pub fn requests(&self) -> &[(ResourceId, u32)] {
        &self.requests
    }

    /// The path request count `N^λ_{i,q}` for one resource.
    pub fn request_count(&self, resource: ResourceId) -> u32 {
        self.requests
            .binary_search_by_key(&resource, |&(q, _)| q)
            .map(|i| self.requests[i].1)
            .unwrap_or(0)
    }

    /// Returns `true` if the path requests `resource` at least once.
    pub fn requests_resource(&self, resource: ResourceId) -> bool {
        self.request_count(resource) > 0
    }
}

/// The deterministic output order shared by both enumerators: length
/// descending, then request vector ascending, then non-critical length
/// ascending. The order is analysis-friendly twice over: the warm-start
/// memo sees monotone request profiles, and under dominance pruning a
/// dominator always sorts *before* the signatures it dominates (longer
/// first; on equal length and requests, smaller non-critical first), so the
/// binding-path tie-break (`>` keeps the earliest maximum) is unaffected by
/// pruning.
fn sort_signatures(signatures: &mut [PathSignature]) {
    signatures.sort_by(|a, b| {
        b.len
            .cmp(&a.len)
            .then_with(|| a.requests.cmp(&b.requests))
            .then_with(|| a.noncritical.cmp(&b.noncritical))
    });
}

/// The outcome of enumerating a task's complete paths with deduplication.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSignatures {
    /// Distinct signatures found (at most the requested cap).
    pub signatures: Vec<PathSignature>,
    /// `true` when enumeration stopped at a cap; callers must then treat
    /// the list as incomplete and combine it with a bound that dominates
    /// every path (e.g. the EN bound). The analysis surfaces this through
    /// `TaskBound::truncated` and the report-level aggregate.
    pub truncated: bool,
    /// Enumeration work performed (diagnostic): complete paths walked by
    /// the DFS enumerator, partial-signature extensions performed by the
    /// DP enumerator. Not part of the equivalence contract between the two.
    pub paths_visited: u64,
}

/// Enumerates the distinct path signatures of `task`, visiting complete
/// paths depth-first and stopping after `cap` *distinct* signatures have
/// been collected (a further distinct signature marks the result
/// truncated).
///
/// The longest path's signature is always included, even under truncation,
/// so downstream analyses never miss the critical path.
///
/// # Examples
///
/// ```
/// use dpcp_model::fig1;
/// use dpcp_model::path::enumerate_signatures;
///
/// let (ti, _) = fig1::tasks()?;
/// let sigs = enumerate_signatures(&ti, 100);
/// assert!(!sigs.truncated);
/// // G_i of Fig. 1 has 4 complete paths; two of them (through v3 and v4)
/// // agree on (length, requests) and collapse into one signature.
/// assert_eq!(sigs.paths_visited, 4);
/// assert_eq!(sigs.signatures.len(), 3);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
pub fn enumerate_signatures(task: &DagTask, cap: usize) -> PathSignatures {
    enumerate_signatures_capped(task, cap, u64::MAX)
}

/// Like [`enumerate_signatures`], additionally stopping after `visit_cap`
/// complete paths have been walked (dense DAGs can have combinatorially
/// many paths even when few signatures are distinct; the visit cap bounds
/// enumeration time itself). Hitting either cap marks the result truncated.
pub fn enumerate_signatures_capped(task: &DagTask, cap: usize, visit_cap: u64) -> PathSignatures {
    let cap = cap.max(1);
    let visit_cap = visit_cap.max(1);
    let mut seen: HashSet<PathSignature> = HashSet::new();
    let mut paths_visited = 0u64;
    let mut truncated = false;
    task.dag().for_each_path(|path| {
        paths_visited += 1;
        let sig = PathSignature::from_path(task, path);
        if seen.len() >= cap && !seen.contains(&sig) {
            truncated = true;
            return ControlFlow::Break(());
        }
        seen.insert(sig);
        if paths_visited >= visit_cap {
            truncated = true;
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    });

    let mut signatures: Vec<PathSignature> = seen.into_iter().collect();
    let longest = PathSignature::from_path(task, task.longest_path());
    if !signatures.contains(&longest) {
        signatures.push(longest);
    }
    // Deterministic order for reproducible analysis output.
    sort_signatures(&mut signatures);
    PathSignatures {
        signatures,
        truncated,
        paths_visited,
    }
}

/// Enumerates the distinct path signatures of `task` with the
/// signature-domain dynamic program (see the module docs), stopping after
/// `cap` distinct signatures. Equivalent to [`enumerate_signatures`] but
/// polynomial in the number of *distinct* partial signatures instead of
/// exponential in the number of paths.
///
/// # Examples
///
/// ```
/// use dpcp_model::fig1;
/// use dpcp_model::path::{enumerate_signatures, enumerate_signatures_dp};
///
/// let (ti, _) = fig1::tasks()?;
/// let dfs = enumerate_signatures(&ti, 100);
/// let dp = enumerate_signatures_dp(&ti, 100);
/// assert_eq!(dfs.signatures, dp.signatures);
/// assert!(!dp.truncated);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
pub fn enumerate_signatures_dp(task: &DagTask, cap: usize) -> PathSignatures {
    enumerate_signatures_dp_capped(task, cap, u64::MAX, false)
}

/// The signature-domain dynamic program behind the EP analysis.
///
/// Vertices are processed in topological order; `reach[v]` holds the set of
/// distinct partial signatures of all head-to-`v` prefixes (with `v`
/// included), deduplicated at every merge point. Tail frontiers are the
/// complete-path signatures. Frontiers are freed as soon as every successor
/// has consumed them, so memory follows the live topological cut.
///
/// Cap semantics mirror [`enumerate_signatures_capped`] in *meaning* —
/// `cap` bounds distinct signatures, `visit_cap` bounds enumeration work
/// (counted in partial-signature extensions, the DP's analogue of a path
/// visit), hitting either marks the result truncated — with one deliberate
/// refinement: on hitting a cap the DP **bails to thin mode** (every later
/// frontier keeps only its single longest partial, so enumeration finishes
/// in `O(|V| · max-degree)`) instead of carrying a `cap`-wide frontier to
/// the sinks the way the DFS carries its first-`cap` subset. A truncated
/// result therefore holds few signatures (the surviving thin spine plus the
/// ensured longest), not `cap` of them. This is outcome-preserving: a
/// truncated enumeration makes the analysis's `wcrt_over_signatures` mix
/// in the EN fallback, whose bound dominates *every* per-path bound
/// term-wise, so the capped subset the DFS returns costs Theorem 1
/// evaluations without ever changing the task verdict (asserted by the
/// default-cap sweep in `tests/signature_dp.rs`). The DP may also truncate
/// where the DFS would not (a transient frontier blowup that later merges
/// back below the cap) and vice versa (the DFS drowning in path count
/// where frontiers stay small — the common case the DP exists for); both
/// remain sound.
///
/// The longest path's signature is always included, even under truncation
/// or dominance pruning, so downstream analyses never miss the critical
/// path. With `prune_dominated` set, dominated signatures (see
/// [`prune_dominated_signatures`]) are dropped at every merge point as well
/// as from the final set; the surviving set yields the identical binding
/// path bound — only the enumeration and evaluation get cheaper.
pub fn enumerate_signatures_dp_capped(
    task: &DagTask,
    cap: usize,
    visit_cap: u64,
    prune_dominated: bool,
) -> PathSignatures {
    let cap = cap.max(1);
    let visit_cap = visit_cap.max(1);
    if prune_dominated {
        // Pruned frontiers hold exactly one length per profile, which
        // admits a much leaner representation — see the specialized loop.
        return enumerate_signatures_dp_pruned(task, cap, visit_cap);
    }
    let dag = task.dag();
    let n = dag.vertex_count();

    // Representation: a frontier is a set of per-profile *groups*, each a
    // sorted distinct-length list plus a lazy offset (absolute length =
    // offset + element); the lists of all groups live concatenated in one
    // flat buffer. Request profiles are interned and the non-critical
    // length is the coupled `len − crit(profile)` (per-vertex `C'_{i,x} =
    // C_{i,x} − Σ_q N_{i,x,q} · L_{i,q}` summed along the prefix), so a
    // partial signature is just a `u64` until materialization. A vertex
    // reads its predecessors' frontiers by reference — no clones — and
    // writes its own via bulk copies (single-source groups) or linear
    // `u64` merges (the merge-point dedup) into pooled buffers.
    let mut interner = ProfileInterner::new(task);
    let weights: Vec<u64> = (0..n)
        .map(|x| task.vertex(VertexId::new(x)).wcet().as_ns())
        .collect();

    let mut reach: Vec<Frontier> = vec![Frontier::default(); n];
    // How many successors still need each frontier; 0 ⇒ recycled.
    let mut pending: Vec<usize> = (0..n).map(|x| dag.out_degree(VertexId::new(x))).collect();
    let mut pool: Vec<Frontier> = Vec::new();
    // Complete-path `(profile, absolute length)` pairs collected at tails.
    let mut complete: Vec<(u32, u64)> = Vec::new();
    let mut extensions = 0u64;
    let mut truncated = false;
    let mut exhausted = false;
    let mut incoming: Vec<(u32, u64, u32, u32, u32)> = Vec::new();
    let mut order: Vec<u64> = Vec::new();

    for &v in dag.topological_order() {
        let x = v.index();
        let w_v = weights[x];
        let issues_requests = !task.vertex(v).requests().is_empty();

        // Incoming groups, shifted by this vertex's WCET and relabeled by
        // its requests; source lists are addressed as `(pred, start, end)`
        // index triples (`HEAD_SOURCE` marks the virtual `[0]` list) so the
        // buffer carries no borrows and is reused across vertices.
        incoming.clear();
        if dag.is_head(v) {
            extensions = extensions.saturating_add(1);
            let p = if issues_requests {
                interner.transition(0, v)
            } else {
                0
            };
            incoming.push((p, w_v, HEAD_SOURCE, 0, 1));
        } else {
            for &pr in dag.predecessors(v) {
                for &(p, off, s, e) in &reach[pr.index()].groups {
                    extensions = extensions.saturating_add(u64::from(e - s));
                    let p2 = if issues_requests {
                        interner.transition(p, v)
                    } else {
                        p
                    };
                    incoming.push((p2, off.saturating_add(w_v), pr.index() as u32, s, e));
                }
            }
        }
        // Group by profile via packed `(profile << 32) | index` keys —
        // sorting u64s is far cheaper than sorting the 24-byte entries.
        order.clear();
        order.extend(
            incoming
                .iter()
                .enumerate()
                .map(|(idx, &(p, _, _, _, _))| (u64::from(p) << 32) | idx as u64),
        );
        order.sort_unstable();
        let mut next = pool.pop().unwrap_or_default();
        next.rebuild_from(&reach, &incoming, &order, prune_dominated);

        for &pr in dag.predecessors(v) {
            pending[pr.index()] -= 1;
            if pending[pr.index()] == 0 {
                pool.push(core::mem::take(&mut reach[pr.index()]));
            }
        }

        // Either cap trips the thin-mode bail-out: the result is truncated,
        // so the analysis will lean on the EN fallback anyway — carrying a
        // wide frontier (or a `cap`-sized subset, as the DFS does) to the
        // sinks would be pure waste. A frontier beyond `cap` makes
        // truncation *inevitable* (any fixed suffix to a tail maps it
        // injectively onto more than `cap` distinct complete signatures),
        // so the bail-out is exact, never premature.
        if next.lens.len() > cap || extensions >= visit_cap {
            truncated = true;
            exhausted = true;
        }
        if exhausted && next.lens.len() > 1 {
            let best = next
                .pairs()
                .min_by(|&a, &b| interner.output_cmp(a, b))
                .expect("non-empty frontier");
            next.lens.clear();
            next.lens.push(best.1);
            next.groups.clear();
            next.groups.push((best.0, 0, 0, 1));
        }

        if dag.is_tail(v) {
            complete.extend(next.pairs());
            pool.push(next);
        } else {
            reach[x] = next;
        }
    }

    finish_dp(task, &interner, complete, false, truncated, extensions, cap)
}

/// The shared tail of both DP loops: cross-tail dedup (and, when pruning,
/// cross-tail dominance), cap truncation, materialization, the guaranteed
/// longest path and the output sort. Numbering-invariant: the result
/// depends only on the set of `(request vector, length)` pairs behind the
/// interned ids, never on the order ids were assigned.
fn finish_dp(
    task: &DagTask,
    interner: &ProfileInterner<'_>,
    mut complete: Vec<(u32, u64)>,
    prune_dominated: bool,
    mut truncated: bool,
    extensions: u64,
    cap: usize,
) -> PathSignatures {
    complete.sort_unstable();
    complete.dedup();
    if prune_dominated {
        // Ascending `(profile, len)`: reversing keeps each profile's
        // longest under `dedup_by_key`.
        complete.reverse();
        complete.dedup_by_key(|&mut (p, _)| p);
    }
    if complete.len() > cap {
        truncated = true;
        complete.sort_by(|&a, &b| interner.output_cmp(a, b));
        complete.truncate(cap);
    }
    let mut signatures: Vec<PathSignature> = complete
        .into_iter()
        .map(|(p, len)| interner.materialize(p, len))
        .collect();
    let longest = PathSignature::from_path(task, task.longest_path());
    if !signatures.contains(&longest) {
        signatures.push(longest);
    }
    sort_signatures(&mut signatures);
    PathSignatures {
        signatures,
        truncated,
        paths_visited: extensions,
    }
}

/// The dominance-pruned specialization of the signature DP: with pruning
/// on, every frontier keeps exactly one (the longest) partial per request
/// profile, so a frontier is just a `Vec<(profile, absolute length)>` —
/// no per-profile length lists, no lazy offsets, no per-vertex sort.
/// Per-vertex work is linear in the incoming pairs via two stamped dense
/// arrays indexed by interned profile id:
///
/// - `trans_*` memoizes the `profile · vertex → profile` transition for
///   the vertex being processed (each `(profile, vertex)` pair occurs at
///   exactly one vertex visit, so a global memo buys nothing more),
/// - `seen_*` dedups the outgoing profiles, folding same-profile arrivals
///   with a running max — the dominance rule applied on the fly.
///
/// Cap semantics, thin-mode bail-out and the assembled output are
/// identical to the generic loop (shared [`finish_dp`] tail; equality is
/// pinned by the `dp_pruned_*` tests and the seeded sweeps in
/// `tests/signature_dp.rs`).
fn enumerate_signatures_dp_pruned(task: &DagTask, cap: usize, visit_cap: u64) -> PathSignatures {
    let dag = task.dag();
    let n = dag.vertex_count();
    let mut interner = ProfileInterner::new(task);
    let weights: Vec<u64> = (0..n)
        .map(|x| task.vertex(VertexId::new(x)).wcet().as_ns())
        .collect();

    let mut reach: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    let mut pending: Vec<usize> = (0..n).map(|x| dag.out_degree(VertexId::new(x))).collect();
    let mut pool: Vec<Vec<(u32, u64)>> = Vec::new();
    let mut complete: Vec<(u32, u64)> = Vec::new();
    let mut extensions = 0u64;
    let mut truncated = false;
    let mut exhausted = false;

    // Stamped scratch, one slot per interned profile; a slot is live for
    // the current vertex iff its stamp equals the vertex epoch.
    let mut trans_stamp: Vec<u32> = vec![0];
    let mut trans_val: Vec<u32> = vec![0];
    let mut seen_stamp: Vec<u32> = vec![0];
    let mut seen_slot: Vec<u32> = vec![0];

    for (epoch0, &v) in dag.topological_order().iter().enumerate() {
        let epoch = u32::try_from(epoch0 + 1).expect("vertex count fits u32");
        let x = v.index();
        let w_v = weights[x];
        let issues_requests = !task.vertex(v).requests().is_empty();
        let mut next = pool.pop().unwrap_or_default();
        next.clear();

        if dag.is_head(v) {
            extensions = extensions.saturating_add(1);
            let p = if issues_requests {
                transition_stamped(
                    &mut interner,
                    &mut trans_stamp,
                    &mut trans_val,
                    &mut seen_stamp,
                    &mut seen_slot,
                    0,
                    v,
                    epoch,
                )
            } else {
                0
            };
            next.push((p, w_v));
        } else {
            for &pr in dag.predecessors(v) {
                for &(p, len_in) in &reach[pr.index()] {
                    extensions = extensions.saturating_add(1);
                    let p2 = if issues_requests {
                        transition_stamped(
                            &mut interner,
                            &mut trans_stamp,
                            &mut trans_val,
                            &mut seen_stamp,
                            &mut seen_slot,
                            p,
                            v,
                            epoch,
                        )
                    } else {
                        p
                    };
                    let abs = len_in.saturating_add(w_v);
                    let slot = &mut seen_stamp[p2 as usize];
                    if *slot != epoch {
                        *slot = epoch;
                        seen_slot[p2 as usize] =
                            u32::try_from(next.len()).expect("frontier fits u32");
                        next.push((p2, abs));
                    } else {
                        let s = seen_slot[p2 as usize] as usize;
                        if abs > next[s].1 {
                            next[s].1 = abs;
                        }
                    }
                }
            }
        }

        for &pr in dag.predecessors(v) {
            pending[pr.index()] -= 1;
            if pending[pr.index()] == 0 {
                pool.push(core::mem::take(&mut reach[pr.index()]));
            }
        }

        // Same bail-out as the generic loop: either cap makes truncation
        // inevitable, so carry only the thin spine to the sinks.
        if next.len() > cap || extensions >= visit_cap {
            truncated = true;
            exhausted = true;
        }
        if exhausted && next.len() > 1 {
            let best = next
                .iter()
                .copied()
                .min_by(|&a, &b| interner.output_cmp(a, b))
                .expect("non-empty frontier");
            next.clear();
            next.push(best);
        }

        if dag.is_tail(v) {
            complete.extend(next.iter().copied());
            pool.push(next);
        } else {
            reach[x] = next;
        }
    }

    finish_dp(task, &interner, complete, true, truncated, extensions, cap)
}

/// The pruned loop's per-vertex transition memo: `trans_val[p]` holds
/// `transition(p, vertex)` for the vertex whose epoch matches
/// `trans_stamp[p]`. Grows every stamped array in lockstep when the
/// transition interns a new profile.
#[expect(clippy::too_many_arguments)]
#[inline]
fn transition_stamped(
    interner: &mut ProfileInterner<'_>,
    trans_stamp: &mut Vec<u32>,
    trans_val: &mut Vec<u32>,
    seen_stamp: &mut Vec<u32>,
    seen_slot: &mut Vec<u32>,
    p: u32,
    v: VertexId,
    epoch: u32,
) -> u32 {
    if trans_stamp[p as usize] == epoch {
        return trans_val[p as usize];
    }
    let p2 = interner.transition_uncached(p, v);
    let profiles = interner.profiles.len();
    if trans_stamp.len() < profiles {
        trans_stamp.resize(profiles, 0);
        trans_val.resize(profiles, 0);
        seen_stamp.resize(profiles, 0);
        seen_slot.resize(profiles, 0);
    }
    trans_stamp[p as usize] = epoch;
    trans_val[p as usize] = p2;
    p2
}

/// Marks the virtual single-element `[0]` source list of a head vertex in
/// the DP's incoming-group index triples.
const HEAD_SOURCE: u32 = u32::MAX;

/// A small multiply-rotate hasher (the FxHash construction) for the DP's
/// interner maps: their keys are a couple of machine words, for which the
/// default SipHash costs more than the lookups it guards (the profile
/// transition is on the per-group hot path).
#[derive(Debug, Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(26) ^ word).wrapping_mul(Self::SEED);
    }
}

impl core::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("exact chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            self.add(word);
        }
    }

    #[inline]
    fn write_u64(&mut self, word: u64) {
        self.add(word);
    }
}

type FxHashMap<K, V> = HashMap<K, V, core::hash::BuildHasherDefault<FxHasher>>;

/// One DP frontier: per-profile sorted distinct-length lists, concatenated
/// in `lens`, addressed by `groups` entries `(profile, lazy offset, start,
/// end)` — the absolute length of an element is `offset + lens[i]`.
#[derive(Debug, Default, Clone)]
struct Frontier {
    lens: Vec<u64>,
    groups: Vec<(u32, u64, u32, u32)>,
}

impl Frontier {
    /// Iterates `(profile, absolute length)` pairs.
    fn pairs(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.groups.iter().flat_map(move |&(p, off, s, e)| {
            self.lens[s as usize..e as usize]
                .iter()
                .map(move |&l| (p, off.saturating_add(l)))
        })
    }

    /// Rebuilds this frontier from incoming groups sorted by profile, each
    /// `(profile, offset, source pred, start, end)` with `HEAD_SOURCE`
    /// naming the virtual `[0]` list: single-source profiles are
    /// bulk-copied (offset kept lazy), multi-source profiles get a linear
    /// merge with dedup — identical partial signatures collapse here.
    /// With `prune_dominated`, each profile keeps only its longest length.
    fn rebuild_from(
        &mut self,
        reach: &[Frontier],
        incoming: &[(u32, u64, u32, u32, u32)],
        order: &[u64],
        prune_dominated: bool,
    ) {
        self.lens.clear();
        self.groups.clear();
        let source = |pred: u32, s: u32, e: u32| -> &[u64] {
            if pred == HEAD_SOURCE {
                &[0]
            } else {
                &reach[pred as usize].lens[s as usize..e as usize]
            }
        };
        let entry = |k: u64| incoming[(k & 0xffff_ffff) as usize];
        let mut i = 0;
        while i < order.len() {
            let p = (order[i] >> 32) as u32;
            let mut j = i + 1;
            while j < order.len() && (order[j] >> 32) as u32 == p {
                j += 1;
            }
            let start = u32::try_from(self.lens.len()).expect("frontier fits u32");
            if prune_dominated {
                // Dominance within a profile: the longest partial only
                // (sorted lists ⇒ the last element is each source's max).
                let best = order[i..j]
                    .iter()
                    .map(|&k| {
                        let (_, o, pr2, s2, e2) = entry(k);
                        o.saturating_add(*source(pr2, s2, e2).last().expect("non-empty list"))
                    })
                    .max()
                    .expect("non-empty group");
                self.lens.push(best);
                self.groups.push((p, 0, start, start + 1));
            } else if j == i + 1 {
                let (_, off, pred, s, e) = entry(order[i]);
                self.lens.extend_from_slice(source(pred, s, e));
                let end = u32::try_from(self.lens.len()).expect("frontier fits u32");
                self.groups.push((p, off, start, end));
            } else {
                // Multi-source merge: materialize absolute lengths, sort,
                // dedup in place (u64 sorts of short runs beat a k-way
                // heads scan by a wide margin).
                for &k in &order[i..j] {
                    let (_, o, pr2, s2, e2) = entry(k);
                    self.lens
                        .extend(source(pr2, s2, e2).iter().map(|&x| x.saturating_add(o)));
                }
                self.lens[start as usize..].sort_unstable();
                let mut w = start as usize;
                for r in start as usize..self.lens.len() {
                    if r == start as usize || self.lens[r] != self.lens[w - 1] {
                        self.lens[w] = self.lens[r];
                        w += 1;
                    }
                }
                self.lens.truncate(w);
                let end = u32::try_from(self.lens.len()).expect("frontier fits u32");
                self.groups.push((p, 0, start, end));
            }
            i = j;
        }
    }
}

/// The DP's request-profile interner: every distinct per-resource request
/// vector reachable along some prefix gets a dense id, together with its
/// critical content `Σ_q N^λ_q · L_{i,q}`. Partial signatures then travel
/// as `(profile id, length)` pairs — the non-critical length is recovered
/// as `len − crit` when materializing, which is bit-identical to
/// [`PathSignature::from_path`]'s per-vertex sum because every vertex WCET
/// contains its critical sections (validated at task construction).
struct ProfileInterner<'a> {
    task: &'a DagTask,
    /// `profiles[id]` — sorted `(resource, count)` vector; id 0 is empty.
    profiles: Vec<Vec<(ResourceId, u32)>>,
    /// The critical content of each profile.
    crit: Vec<Time>,
    lookup: FxHashMap<Vec<(ResourceId, u32)>, u32>,
    /// Memoized `profile · vertex → profile` transitions, keyed by the
    /// packed word `(profile << 32) | vertex` (the generic loop; the
    /// pruned loop stamps a dense per-vertex memo instead).
    transitions: FxHashMap<u64, u32>,
    /// Candidate-profile build buffer, reused across transitions.
    scratch: Vec<(ResourceId, u32)>,
}

impl<'a> ProfileInterner<'a> {
    fn new(task: &'a DagTask) -> Self {
        let mut lookup = FxHashMap::default();
        lookup.insert(Vec::new(), 0);
        ProfileInterner {
            task,
            profiles: vec![Vec::new()],
            crit: vec![Time::ZERO],
            lookup,
            transitions: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// The profile reached by extending `p` with vertex `v`'s requests.
    fn transition(&mut self, p: u32, v: VertexId) -> u32 {
        let key = (u64::from(p) << 32) | v.index() as u64;
        if let Some(&t) = self.transitions.get(&key) {
            return t;
        }
        let id = self.transition_uncached(p, v);
        self.transitions.insert(key, id);
        id
    }

    /// [`transition`](Self::transition) without the `(profile, vertex)`
    /// memo: builds the candidate request vector in the reusable scratch
    /// buffer (no allocation on the intern-hit path) and interns it.
    fn transition_uncached(&mut self, p: u32, v: VertexId) -> u32 {
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.profiles[p as usize]);
        for r in self.task.vertex(v).requests() {
            match self.scratch.binary_search_by_key(&r.resource, |&(q, _)| q) {
                Ok(i) => self.scratch[i].1 += r.count,
                Err(i) => self.scratch.insert(i, (r.resource, r.count)),
            }
        }
        match self.lookup.get(&self.scratch) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.profiles.len()).expect("profile ids fit u32");
                let crit = self
                    .scratch
                    .iter()
                    .map(|&(q, cnt)| {
                        self.task
                            .cs_length(q)
                            .unwrap_or(Time::ZERO)
                            .saturating_mul(u64::from(cnt))
                    })
                    .sum();
                self.profiles.push(self.scratch.clone());
                self.crit.push(crit);
                self.lookup.insert(self.scratch.clone(), id);
                id
            }
        }
    }

    /// The output ordering of [`sort_signatures`] on interned
    /// `(profile, absolute length in ns)` pairs: length descending, then
    /// request vector ascending. (The third key, non-critical ascending,
    /// never fires here: equal lengths and equal profiles imply equal
    /// non-critical lengths by the coupling.)
    fn output_cmp(&self, a: (u32, u64), b: (u32, u64)) -> core::cmp::Ordering {
        b.1.cmp(&a.1)
            .then_with(|| self.profiles[a.0 as usize].cmp(&self.profiles[b.0 as usize]))
    }

    /// Reconstructs the full signature of an interned partial.
    fn materialize(&self, p: u32, len_ns: u64) -> PathSignature {
        let len = Time::from_ns(len_ns);
        PathSignature {
            len,
            noncritical: len.saturating_sub(self.crit[p as usize]),
            requests: self.profiles[p as usize].clone(),
        }
    }
}

/// Removes every signature that is *dominated* by another one in the sense
/// of the module-level monotonicity note: `A` is dropped when some distinct
/// `B` has the identical request vector, `B.len() ≥ A.len()` and critical
/// content `B.len() − B.noncritical_len() ≥ A.len() − A.noncritical_len()`.
/// A dominated signature's Theorem 1 recurrence is bounded pointwise by its
/// dominator's, so it can never be the binding EP path; the kept set is the
/// per-request-profile Pareto frontier over `(length, critical content)` —
/// for signatures of actual task paths (where the critical content is
/// determined by the request vector) exactly the longest signature of each
/// distinct request profile.
///
/// The surviving signatures are left in an unspecified order; callers sort
/// afterwards.
pub fn prune_dominated_signatures(signatures: &mut Vec<PathSignature>) {
    if signatures.len() < 2 {
        return;
    }
    let crit = |s: &PathSignature| s.len.saturating_sub(s.noncritical);
    // Group by request vector; within a group, length descending (then
    // critical content descending): a signature is dominated exactly when
    // an earlier group member also has critical content ≥ its own.
    signatures.sort_by(|a, b| {
        a.requests
            .cmp(&b.requests)
            .then_with(|| b.len.cmp(&a.len))
            .then_with(|| crit(b).cmp(&crit(a)))
    });
    let mut keep = vec![false; signatures.len()];
    let mut i = 0;
    while i < signatures.len() {
        let mut max_crit: Option<Time> = None;
        let mut j = i;
        while j < signatures.len() && signatures[j].requests == signatures[i].requests {
            let c = crit(&signatures[j]);
            if max_crit.is_none_or(|m| c > m) {
                keep[j] = true;
                max_crit = Some(c);
            }
            j += 1;
        }
        i = j;
    }
    let mut idx = 0;
    signatures.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dag;
    use crate::ids::TaskId;
    use crate::task::{RequestSpec, VertexSpec};

    fn rid(i: usize) -> ResourceId {
        ResourceId::new(i)
    }

    /// Diamond where both branches have the same WCET but different
    /// requests.
    fn task_with_branches() -> DagTask {
        let dag = Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_us(100)))
            .vertex(VertexSpec::with_requests(
                Time::from_us(200),
                [RequestSpec::new(rid(0), 2)],
            ))
            .vertex(VertexSpec::with_requests(
                Time::from_us(200),
                [RequestSpec::new(rid(1), 1)],
            ))
            .vertex(VertexSpec::new(Time::from_us(100)))
            .critical_section(rid(0), Time::from_us(10))
            .critical_section(rid(1), Time::from_us(30))
            .build()
            .unwrap()
    }

    #[test]
    fn signature_accumulates_along_path() {
        let t = task_with_branches();
        let v = VertexId::new;
        let sig = PathSignature::from_path(&t, &[v(0), v(1), v(3)]);
        assert_eq!(sig.len(), Time::from_us(400));
        assert_eq!(sig.request_count(rid(0)), 2);
        assert_eq!(sig.request_count(rid(1)), 0);
        assert!(sig.requests_resource(rid(0)));
        assert!(!sig.requests_resource(rid(1)));
        // Non-critical = 400µs − 2·10µs.
        assert_eq!(sig.noncritical_len(), Time::from_us(380));
    }

    #[test]
    fn enumeration_finds_all_distinct_signatures() {
        let t = task_with_branches();
        let sigs = enumerate_signatures(&t, 64);
        assert!(!sigs.truncated);
        assert_eq!(sigs.paths_visited, 2);
        // Equal lengths but different request vectors ⇒ 2 signatures.
        assert_eq!(sigs.signatures.len(), 2);
    }

    #[test]
    fn identical_branches_dedup_to_one_signature() {
        let dag = Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let t = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_us(100)))
            .vertex(VertexSpec::new(Time::from_us(200)))
            .vertex(VertexSpec::new(Time::from_us(200)))
            .vertex(VertexSpec::new(Time::from_us(100)))
            .build()
            .unwrap();
        let sigs = enumerate_signatures(&t, 64);
        assert_eq!(sigs.signatures.len(), 1);
        assert_eq!(sigs.paths_visited, 2);
    }

    #[test]
    fn truncation_keeps_longest_path() {
        // Wide fan: head → {8 distinct middles} → tail; cap at 2.
        let edges: Vec<(usize, usize)> = (1..=8).flat_map(|x| [(0, x), (x, 9)]).collect();
        let dag = Dag::new(10, edges).unwrap();
        let mut b = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_us(10)));
        for i in 1..=8u64 {
            b = b.vertex(VertexSpec::new(Time::from_us(10 * i)));
        }
        let t = b
            .vertex(VertexSpec::new(Time::from_us(10)))
            .build()
            .unwrap();
        let sigs = enumerate_signatures(&t, 2);
        assert!(sigs.truncated);
        // The longest path (10 + 80 + 10) must survive truncation.
        let max_len = sigs
            .signatures
            .iter()
            .map(PathSignature::len)
            .max()
            .unwrap();
        assert_eq!(max_len, Time::from_us(100));
    }

    #[test]
    fn signatures_sorted_longest_first() {
        let t = task_with_branches();
        let sigs = enumerate_signatures(&t, 64).signatures;
        for w in sigs.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn cap_zero_is_clamped_to_one() {
        let t = task_with_branches();
        let sigs = enumerate_signatures(&t, 0);
        assert!(!sigs.signatures.is_empty());
        let sigs = enumerate_signatures_dp(&t, 0);
        assert!(!sigs.signatures.is_empty());
    }

    // ---- signature-domain DP ----

    /// A chain of `k` diamonds whose branches differ in WCET, with one
    /// request on every upper branch: 2^k complete paths, but partial
    /// signatures collapse only where branches agree.
    fn diamond_chain(k: usize, identical_branches: bool) -> DagTask {
        let n = 1 + 3 * k; // head + k * (two branches + join)
        let mut edges = Vec::new();
        let mut prev_join = 0usize;
        for d in 0..k {
            let a = 1 + 3 * d;
            let b = a + 1;
            let join = a + 2;
            edges.extend([(prev_join, a), (prev_join, b), (a, join), (b, join)]);
            prev_join = join;
        }
        let dag = Dag::new(n, edges).unwrap();
        let mut builder = DagTask::builder(TaskId::new(0), Time::from_ms(100))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_us(10)));
        for _ in 0..k {
            builder = builder
                .vertex(VertexSpec::with_requests(
                    Time::from_us(20),
                    [RequestSpec::new(rid(0), 1)],
                ))
                .vertex(VertexSpec::new(if identical_branches {
                    Time::from_us(20)
                } else {
                    Time::from_us(30)
                }))
                .vertex(VertexSpec::new(Time::from_us(10)));
        }
        builder
            .critical_section(rid(0), Time::from_us(5))
            .build()
            .unwrap()
    }

    #[test]
    fn dp_matches_dfs_on_fixtures() {
        let fixtures = [
            task_with_branches(),
            diamond_chain(4, false),
            diamond_chain(4, true),
        ];
        for t in &fixtures {
            let dfs = enumerate_signatures(t, 4096);
            let dp = enumerate_signatures_dp(t, 4096);
            assert!(!dfs.truncated);
            assert!(!dp.truncated);
            assert_eq!(dfs.signatures, dp.signatures);
        }
    }

    #[test]
    fn dp_completes_where_dfs_visit_cap_truncates() {
        // 12 diamonds: 4096 complete paths, but only 13 distinct
        // signatures (0..=12 requests along otherwise-equal-length paths).
        let t = diamond_chain(12, true);
        let dfs_capped = enumerate_signatures_capped(&t, 4096, 100);
        assert!(dfs_capped.truncated, "DFS must drown in path count");
        let dp = enumerate_signatures_dp_capped(&t, 4096, 100_000, false);
        assert!(!dp.truncated, "DP collapses the diamonds at each join");
        assert_eq!(dp.signatures.len(), 13);
        // The DP's work stays linear-ish: far below the path count.
        assert!(dp.paths_visited < 4096, "got {}", dp.paths_visited);
        // And the full (uncapped) DFS agrees on the set.
        let dfs_full = enumerate_signatures(&t, 1 << 14);
        assert_eq!(dfs_full.signatures, dp.signatures);
    }

    #[test]
    fn dp_single_vertex_dag() {
        let t = DagTask::builder(TaskId::new(0), Time::from_ms(1))
            .vertex(VertexSpec::with_requests(
                Time::from_us(100),
                [RequestSpec::new(rid(2), 3)],
            ))
            .critical_section(rid(2), Time::from_us(10))
            .build()
            .unwrap();
        for sigs in [enumerate_signatures(&t, 8), enumerate_signatures_dp(&t, 8)] {
            assert!(!sigs.truncated);
            assert_eq!(sigs.signatures.len(), 1);
            assert_eq!(sigs.signatures[0].len(), Time::from_us(100));
            assert_eq!(sigs.signatures[0].request_count(rid(2)), 3);
        }
    }

    #[test]
    fn dp_zero_wcet_vertices_yield_degenerate_signatures() {
        // All-zero WCETs: every path signature is empty-length.
        let dag = Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let t = DagTask::builder(TaskId::new(0), Time::from_ms(1))
            .dag(dag)
            .vertex(VertexSpec::new(Time::ZERO))
            .vertex(VertexSpec::new(Time::ZERO))
            .vertex(VertexSpec::new(Time::ZERO))
            .vertex(VertexSpec::new(Time::ZERO))
            .build()
            .unwrap();
        let dfs = enumerate_signatures(&t, 8);
        let dp = enumerate_signatures_dp(&t, 8);
        assert_eq!(dfs.signatures, dp.signatures);
        assert_eq!(dp.signatures.len(), 1);
        assert!(dp.signatures[0].is_empty());
    }

    #[test]
    fn dp_cap_truncation_keeps_longest_path() {
        // Wide fan of 8 distinct middles, cap 2 (mirrors the DFS test).
        let edges: Vec<(usize, usize)> = (1..=8).flat_map(|x| [(0, x), (x, 9)]).collect();
        let dag = Dag::new(10, edges).unwrap();
        let mut b = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_us(10)));
        for i in 1..=8u64 {
            b = b.vertex(VertexSpec::new(Time::from_us(10 * i)));
        }
        let t = b
            .vertex(VertexSpec::new(Time::from_us(10)))
            .build()
            .unwrap();
        let sigs = enumerate_signatures_dp_capped(&t, 2, u64::MAX, false);
        assert!(sigs.truncated);
        assert!(sigs.signatures.len() <= 3); // cap + the ensured longest
        let max_len = sigs
            .signatures
            .iter()
            .map(PathSignature::len)
            .max()
            .unwrap();
        assert_eq!(max_len, Time::from_us(100));
    }

    #[test]
    fn dp_visit_cap_exhaustion_is_truncated_and_keeps_longest() {
        let t = diamond_chain(6, false);
        let sigs = enumerate_signatures_dp_capped(&t, 4096, 3, false);
        assert!(sigs.truncated);
        let longest = PathSignature::from_path(&t, t.longest_path());
        assert!(sigs.signatures.contains(&longest));
        // DFS under the same tiny budget also truncates.
        assert!(enumerate_signatures_capped(&t, 4096, 3).truncated);
    }

    #[test]
    fn prune_drops_same_profile_dominated_only() {
        let t = task_with_branches();
        let v = VertexId::new;
        // Same empty request profile, different lengths: the shorter one is
        // dominated. Different profiles must survive regardless of length.
        let long_plain = PathSignature::from_path(&t, &[v(0), v(2), v(3)]); // ℓ1 branch
        let with_req = PathSignature::from_path(&t, &[v(0), v(1), v(3)]); // ℓ0 branch
        let short_plain = PathSignature::from_path(&t, &[v(0), v(3)]);
        let mut sigs = vec![short_plain.clone(), with_req.clone(), long_plain.clone()];
        prune_dominated_signatures(&mut sigs);
        sort_signatures(&mut sigs);
        // `short_plain` has no requests... but so does no other signature:
        // long_plain requests ℓ1, with_req requests ℓ0 ⇒ nothing dominates
        // it and all three survive.
        assert_eq!(sigs.len(), 3);

        // Two signatures with the identical request vector but different
        // lengths (the longer repeats the request-free head vertex): the
        // shorter one is dominated and must be dropped.
        let base = PathSignature::from_path(&t, &[v(0), v(1), v(3)]);
        let longer_same_profile = PathSignature::from_path(&t, &[v(0), v(0), v(1), v(3)]);
        assert_eq!(base.requests(), longer_same_profile.requests());
        assert!(longer_same_profile.len() > base.len());
        let mut sigs = vec![base.clone(), longer_same_profile.clone()];
        prune_dominated_signatures(&mut sigs);
        assert_eq!(sigs, vec![longer_same_profile]);
    }

    #[test]
    fn dp_pruned_is_subset_with_longest_retained() {
        let t = diamond_chain(5, false);
        let full = enumerate_signatures_dp(&t, 4096);
        let pruned = enumerate_signatures_dp_capped(&t, 4096, u64::MAX, true);
        assert!(!pruned.truncated);
        assert!(pruned.signatures.len() <= full.signatures.len());
        for sig in &pruned.signatures {
            assert!(
                full.signatures.contains(sig),
                "pruning must not invent signatures"
            );
        }
        let longest = PathSignature::from_path(&t, t.longest_path());
        assert!(pruned.signatures.contains(&longest));
        // Every pruned-away signature is dominated by a survivor.
        for sig in &full.signatures {
            if pruned.signatures.contains(sig) {
                continue;
            }
            assert!(
                pruned.signatures.iter().any(|b| {
                    b.requests() == sig.requests()
                        && b.len() >= sig.len()
                        && (b.len() - b.noncritical_len()) >= (sig.len() - sig.noncritical_len())
                }),
                "dropped signature lacks a dominator"
            );
        }
    }
}
