//! Complete paths `λ_i` and their analysis signatures.
//!
//! The per-path WCRT bound of Sec. IV depends on a path only through its
//! length `L(λ_i)`, its non-critical length, and its per-resource request
//! counts `N^λ_{i,q}`. [`PathSignature`] captures exactly that triple, so
//! paths that agree on it are interchangeable for the analysis and can be
//! deduplicated — which is what makes enumerating the (combinatorially
//! many) complete paths of dense DAGs tractable.

use core::ops::ControlFlow;
use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::ids::{ResourceId, VertexId};
use crate::task::DagTask;
use crate::time::Time;

/// The analysis-relevant abstraction of one complete path.
///
/// # Examples
///
/// ```
/// use dpcp_model::fig1;
/// use dpcp_model::path::PathSignature;
///
/// let (ti, _tj) = fig1::tasks()?;
/// // The longest path of the Fig. 1 task G_i has length 10 (time units).
/// let sig = PathSignature::from_path(&ti, ti.longest_path());
/// assert_eq!(sig.len(), fig1::unit() * 10);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSignature {
    len: Time,
    noncritical: Time,
    /// `N^λ_{i,q}` per requested resource; sorted, zero counts omitted.
    requests: Vec<(ResourceId, u32)>,
}

impl PathSignature {
    /// Computes the signature of `path` (a vertex sequence of `task`).
    ///
    /// # Panics
    ///
    /// Panics if a vertex index is out of range for the task.
    pub fn from_path(task: &DagTask, path: &[VertexId]) -> Self {
        let mut len = Time::ZERO;
        let mut noncritical = Time::ZERO;
        let mut counts: Vec<(ResourceId, u32)> = Vec::new();
        for &v in path {
            let spec = task.vertex(v);
            len = len.saturating_add(spec.wcet());
            noncritical = noncritical.saturating_add(task.vertex_noncritical_wcet(v));
            for r in spec.requests() {
                match counts.binary_search_by_key(&r.resource, |&(q, _)| q) {
                    Ok(i) => counts[i].1 += r.count,
                    Err(i) => counts.insert(i, (r.resource, r.count)),
                }
            }
        }
        PathSignature {
            len,
            noncritical,
            requests: counts,
        }
    }

    /// The path length `L(λ)` (sum of vertex WCETs on the path).
    #[inline]
    pub fn len(&self) -> Time {
        self.len
    }

    /// `true` when the path has zero length (degenerate, only possible with
    /// zero-WCET vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len.is_zero()
    }

    /// The non-critical portion of the path length,
    /// `Σ_{v ∈ λ} C'_{i,x}`.
    #[inline]
    pub fn noncritical_len(&self) -> Time {
        self.noncritical
    }

    /// The per-resource path request counts `N^λ_{i,q}` (sorted, non-zero).
    #[inline]
    pub fn requests(&self) -> &[(ResourceId, u32)] {
        &self.requests
    }

    /// The path request count `N^λ_{i,q}` for one resource.
    pub fn request_count(&self, resource: ResourceId) -> u32 {
        self.requests
            .binary_search_by_key(&resource, |&(q, _)| q)
            .map(|i| self.requests[i].1)
            .unwrap_or(0)
    }

    /// Returns `true` if the path requests `resource` at least once.
    pub fn requests_resource(&self, resource: ResourceId) -> bool {
        self.request_count(resource) > 0
    }
}

/// The outcome of enumerating a task's complete paths with deduplication.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSignatures {
    /// Distinct signatures found (at most the requested cap).
    pub signatures: Vec<PathSignature>,
    /// `true` when enumeration stopped at the cap; callers must then treat
    /// the list as incomplete and combine it with a bound that dominates
    /// every path (e.g. the EN bound).
    pub truncated: bool,
    /// The number of the task's distinct vertices lying on at least one
    /// enumerated path (diagnostic).
    pub paths_visited: u64,
}

/// Enumerates the distinct path signatures of `task`, visiting complete
/// paths depth-first and stopping after `cap` *distinct* signatures have
/// been collected (a further distinct signature marks the result
/// truncated).
///
/// The longest path's signature is always included, even under truncation,
/// so downstream analyses never miss the critical path.
///
/// # Examples
///
/// ```
/// use dpcp_model::fig1;
/// use dpcp_model::path::enumerate_signatures;
///
/// let (ti, _) = fig1::tasks()?;
/// let sigs = enumerate_signatures(&ti, 100);
/// assert!(!sigs.truncated);
/// // G_i of Fig. 1 has 4 complete paths; two of them (through v3 and v4)
/// // agree on (length, requests) and collapse into one signature.
/// assert_eq!(sigs.paths_visited, 4);
/// assert_eq!(sigs.signatures.len(), 3);
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
pub fn enumerate_signatures(task: &DagTask, cap: usize) -> PathSignatures {
    enumerate_signatures_capped(task, cap, u64::MAX)
}

/// Like [`enumerate_signatures`], additionally stopping after `visit_cap`
/// complete paths have been walked (dense DAGs can have combinatorially
/// many paths even when few signatures are distinct; the visit cap bounds
/// enumeration time itself). Hitting either cap marks the result truncated.
pub fn enumerate_signatures_capped(task: &DagTask, cap: usize, visit_cap: u64) -> PathSignatures {
    let cap = cap.max(1);
    let visit_cap = visit_cap.max(1);
    let mut seen: HashSet<PathSignature> = HashSet::new();
    let mut paths_visited = 0u64;
    let mut truncated = false;
    task.dag().for_each_path(|path| {
        paths_visited += 1;
        let sig = PathSignature::from_path(task, path);
        if seen.len() >= cap && !seen.contains(&sig) {
            truncated = true;
            return ControlFlow::Break(());
        }
        seen.insert(sig);
        if paths_visited >= visit_cap {
            truncated = true;
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    });

    let mut signatures: Vec<PathSignature> = seen.into_iter().collect();
    let longest = PathSignature::from_path(task, task.longest_path());
    if !signatures.contains(&longest) {
        signatures.push(longest);
    }
    // Deterministic order for reproducible analysis output.
    signatures.sort_by(|a, b| {
        b.len
            .cmp(&a.len)
            .then_with(|| a.requests.cmp(&b.requests))
            .then_with(|| a.noncritical.cmp(&b.noncritical))
    });
    PathSignatures {
        signatures,
        truncated,
        paths_visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dag;
    use crate::ids::TaskId;
    use crate::task::{RequestSpec, VertexSpec};

    fn rid(i: usize) -> ResourceId {
        ResourceId::new(i)
    }

    /// Diamond where both branches have the same WCET but different
    /// requests.
    fn task_with_branches() -> DagTask {
        let dag = Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_us(100)))
            .vertex(VertexSpec::with_requests(
                Time::from_us(200),
                [RequestSpec::new(rid(0), 2)],
            ))
            .vertex(VertexSpec::with_requests(
                Time::from_us(200),
                [RequestSpec::new(rid(1), 1)],
            ))
            .vertex(VertexSpec::new(Time::from_us(100)))
            .critical_section(rid(0), Time::from_us(10))
            .critical_section(rid(1), Time::from_us(30))
            .build()
            .unwrap()
    }

    #[test]
    fn signature_accumulates_along_path() {
        let t = task_with_branches();
        let v = VertexId::new;
        let sig = PathSignature::from_path(&t, &[v(0), v(1), v(3)]);
        assert_eq!(sig.len(), Time::from_us(400));
        assert_eq!(sig.request_count(rid(0)), 2);
        assert_eq!(sig.request_count(rid(1)), 0);
        assert!(sig.requests_resource(rid(0)));
        assert!(!sig.requests_resource(rid(1)));
        // Non-critical = 400µs − 2·10µs.
        assert_eq!(sig.noncritical_len(), Time::from_us(380));
    }

    #[test]
    fn enumeration_finds_all_distinct_signatures() {
        let t = task_with_branches();
        let sigs = enumerate_signatures(&t, 64);
        assert!(!sigs.truncated);
        assert_eq!(sigs.paths_visited, 2);
        // Equal lengths but different request vectors ⇒ 2 signatures.
        assert_eq!(sigs.signatures.len(), 2);
    }

    #[test]
    fn identical_branches_dedup_to_one_signature() {
        let dag = Dag::new(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let t = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_us(100)))
            .vertex(VertexSpec::new(Time::from_us(200)))
            .vertex(VertexSpec::new(Time::from_us(200)))
            .vertex(VertexSpec::new(Time::from_us(100)))
            .build()
            .unwrap();
        let sigs = enumerate_signatures(&t, 64);
        assert_eq!(sigs.signatures.len(), 1);
        assert_eq!(sigs.paths_visited, 2);
    }

    #[test]
    fn truncation_keeps_longest_path() {
        // Wide fan: head → {8 distinct middles} → tail; cap at 2.
        let edges: Vec<(usize, usize)> = (1..=8).flat_map(|x| [(0, x), (x, 9)]).collect();
        let dag = Dag::new(10, edges).unwrap();
        let mut b = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::new(Time::from_us(10)));
        for i in 1..=8u64 {
            b = b.vertex(VertexSpec::new(Time::from_us(10 * i)));
        }
        let t = b
            .vertex(VertexSpec::new(Time::from_us(10)))
            .build()
            .unwrap();
        let sigs = enumerate_signatures(&t, 2);
        assert!(sigs.truncated);
        // The longest path (10 + 80 + 10) must survive truncation.
        let max_len = sigs
            .signatures
            .iter()
            .map(PathSignature::len)
            .max()
            .unwrap();
        assert_eq!(max_len, Time::from_us(100));
    }

    #[test]
    fn signatures_sorted_longest_first() {
        let t = task_with_branches();
        let sigs = enumerate_signatures(&t, 64).signatures;
        for w in sigs.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn cap_zero_is_clamped_to_one() {
        let t = task_with_branches();
        let sigs = enumerate_signatures(&t, 0);
        assert!(!sigs.signatures.is_empty());
    }
}
