//! Integer time values.
//!
//! All model quantities (WCETs, periods, deadlines, critical-section lengths,
//! response-time bounds, simulation clocks) are expressed as [`Time`] — a
//! nanosecond-resolution unsigned integer. Integer time keeps the fixed-point
//! response-time iterations of the analysis exact and the discrete-event
//! simulator deterministic; the paper's parameter ranges (periods of
//! 10 ms – 1 s, critical sections of 15 µs – 100 µs) fit comfortably in 64
//! bits.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in time or a duration, in nanoseconds.
///
/// `Time` is used for both instants and durations, as is conventional in
/// response-time-analysis code where every quantity lives on a single
/// non-negative axis starting at a job's release.
///
/// # Examples
///
/// ```
/// use dpcp_model::Time;
///
/// let period = Time::from_ms(10);
/// let cs = Time::from_us(50);
/// assert!(cs < period);
/// assert_eq!(period.as_ns(), 10_000_000);
/// assert_eq!(period + period, Time::from_ms(20));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The zero time value.
    pub const ZERO: Time = Time(0);
    /// The largest representable time value; used as an "unbounded" sentinel
    /// by fixed-point iterations that diverge.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time value from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates a time value from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Creates a time value from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Creates a time value from seconds.
    #[inline]
    pub const fn from_s(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the value in microseconds, rounding down.
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in milliseconds, rounding down.
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the value as seconds in floating point (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if this is the zero time value.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition; sticks at [`Time::MAX`] instead of overflowing.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction; clamps at [`Time::ZERO`].
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: Time) -> Option<Time> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating multiplication by a scalar count (e.g. `η_j(L) · N · L`).
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> Time {
        Time(self.0.saturating_mul(k))
    }

    /// Division by a scalar, rounding up (used for `workload / m_i` terms,
    /// where rounding up keeps the bound sound on the integer time line).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[inline]
    pub const fn div_ceil(self, k: u64) -> Time {
        Time(self.0.div_ceil(k))
    }

    /// Returns the smaller of two time values.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two time values.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = u64;
    /// Integer quotient of two time values (e.g. `L / T` job counting).
    #[inline]
    fn div(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc.saturating_add(t))
    }
}

impl<'a> Sum<&'a Time> for Time {
    fn sum<I: Iterator<Item = &'a Time>>(iter: I) -> Time {
        iter.copied().sum()
    }
}

impl From<u64> for Time {
    /// Interprets the integer as nanoseconds.
    #[inline]
    fn from(ns: u64) -> Time {
        Time(ns)
    }
}

impl From<Time> for u64 {
    #[inline]
    fn from(t: Time) -> u64 {
        t.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "∞")
        } else if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000) {
            write!(f, "{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
        } else if ns >= 1_000_000 && ns.is_multiple_of(1_000) {
            write!(f, "{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
        } else if ns >= 1_000 {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

/// Computes `⌈(l + r) / t⌉` — the maximum number of jobs of a task with
/// period `t` and response-time bound `r` that can overlap a window of
/// length `l` (the `η_j(L)` function of Sec. IV-B).
///
/// Saturates instead of overflowing for degenerate inputs.
///
/// # Panics
///
/// Panics if `t` is zero.
///
/// # Examples
///
/// ```
/// use dpcp_model::{time::eta_jobs, Time};
///
/// // Window of one period with response time equal to the period: 2 jobs.
/// let t = Time::from_ms(10);
/// assert_eq!(eta_jobs(t, t, t), 2);
/// // Tiny window still admits one carry-in job.
/// assert_eq!(eta_jobs(Time::from_ns(1), t, t), 2);
/// assert_eq!(eta_jobs(Time::ZERO, Time::ZERO, t), 0);
/// ```
#[inline]
pub fn eta_jobs(window: Time, response_bound: Time, period: Time) -> u64 {
    assert!(!period.is_zero(), "task period must be positive");
    let num = window.as_ns().saturating_add(response_bound.as_ns());
    num.div_ceil(period.as_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Time::from_us(1).as_ns(), 1_000);
        assert_eq!(Time::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(Time::from_s(1).as_ns(), 1_000_000_000);
        assert_eq!(Time::from_ms(10).as_us(), 10_000);
        assert_eq!(Time::from_s(2).as_ms(), 2_000);
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let a = Time::from_us(30);
        let b = Time::from_us(12);
        assert_eq!((a + b).as_us(), 42);
        assert_eq!((a - b).as_us(), 18);
        assert_eq!((a * 3).as_us(), 90);
        assert_eq!((a / 2).as_us(), 15);
        assert_eq!(a / b, 2);
        assert_eq!((a % b).as_us(), 6);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(Time::MAX.saturating_add(Time::from_ns(1)), Time::MAX);
        assert_eq!(Time::ZERO.saturating_sub(Time::from_ns(1)), Time::ZERO);
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
    }

    #[test]
    fn checked_ops_report_overflow() {
        assert_eq!(Time::MAX.checked_add(Time::from_ns(1)), None);
        assert_eq!(Time::ZERO.checked_sub(Time::from_ns(1)), None);
        assert_eq!(
            Time::from_ns(5).checked_sub(Time::from_ns(2)),
            Some(Time::from_ns(3))
        );
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(Time::from_ns(10).div_ceil(4), Time::from_ns(3));
        assert_eq!(Time::from_ns(8).div_ceil(4), Time::from_ns(2));
        assert_eq!(Time::ZERO.div_ceil(7), Time::ZERO);
    }

    #[test]
    fn sum_saturates() {
        let v = vec![Time::MAX, Time::from_ns(1)];
        assert_eq!(v.into_iter().sum::<Time>(), Time::MAX);
    }

    #[test]
    fn display_uses_natural_units() {
        assert_eq!(Time::from_ns(15).to_string(), "15ns");
        assert_eq!(Time::from_us(50).to_string(), "50us");
        assert_eq!(Time::from_ms(10).to_string(), "10.000ms");
        assert_eq!(Time::from_s(1).to_string(), "1.000s");
        assert_eq!(Time::MAX.to_string(), "∞");
    }

    #[test]
    fn eta_counts_overlapping_jobs() {
        let t = Time::from_ms(100);
        // Classic ⌈(L + R)/T⌉ examples.
        assert_eq!(eta_jobs(Time::from_ms(100), Time::from_ms(100), t), 2);
        assert_eq!(eta_jobs(Time::from_ms(101), Time::from_ms(100), t), 3);
        assert_eq!(eta_jobs(Time::from_ms(250), Time::from_ms(50), t), 3);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn eta_rejects_zero_period() {
        let _ = eta_jobs(Time::from_ms(1), Time::ZERO, Time::ZERO);
    }

    #[test]
    fn min_max_are_total() {
        let a = Time::from_ns(3);
        let b = Time::from_ns(7);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
