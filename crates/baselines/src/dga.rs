//! DGA: a dependency-graph-style serialization bound, reader-writer aware.
//!
//! Dependency-graph approaches (Chen et al.) treat each resource's
//! critical sections as a single serialized sub-schedule: every job's
//! requests are ordered against the *full* critical-section supply of the
//! resource within its window, rather than against a per-request FIFO
//! queue. This surrogate keeps that shape analytically: per resource the
//! blocking is the whole windowed remote demand plus the job's own queued
//! sections — the windowed *cap* of the FIFO analyses, taken without the
//! per-request `min`. It is therefore never smaller than the LPP/MPCP-SA
//! blocking term (coarser, but sound wherever they are), and it prices
//! reads and writes at their own lengths.

use dpcp_core::analysis::request::fixed_point;
use dpcp_core::analysis::{DelayBreakdown, SchedulabilityReport, TaskBound};
use dpcp_core::partition::PartitionOutcome;
use dpcp_core::{AnalysisSession, ProtocolAnalysis, ResourceHeuristic, SchedAnalyzer};
use dpcp_model::{Partition, Platform, TaskId, TaskSet, Time};

use crate::common::{max_mode_len, windowed_remote_demand, ResponseBounds};

/// Configuration for the DGA analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DgaConfig {
    /// Iteration budget for the response-time recurrence.
    pub max_fixpoint_iterations: usize,
}

impl Default for DgaConfig {
    fn default() -> Self {
        DgaConfig {
            max_fixpoint_iterations: 512,
        }
    }
}

/// The DGA analyzer (implements [`SchedAnalyzer`]).
///
/// # Examples
///
/// ```
/// use dpcp_baselines::Dga;
/// use dpcp_core::{AnalysisConfig, AnalysisSession, ResourceHeuristic};
/// use dpcp_model::{fig1, Platform};
///
/// let tasks = fig1::task_set()?;
/// let platform = Platform::new(4)?;
/// let mut session = AnalysisSession::new(AnalysisConfig::ep());
/// let outcome = session.partition_with(
///     &tasks,
///     &platform,
///     ResourceHeuristic::WorstFitDecreasing,
///     &Dga::new(),
/// );
/// assert!(outcome.is_schedulable());
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct Dga {
    cfg: DgaConfig,
}

impl Dga {
    /// Creates the analyzer with default configuration.
    pub fn new() -> Self {
        Dga::default()
    }

    /// Creates the analyzer with an explicit configuration.
    pub fn with_config(cfg: DgaConfig) -> Self {
        Dga { cfg }
    }
}

/// The serialized per-resource blocking at window `r`:
/// `Σ_q windowed_remote_q(r) + (N_{i,q} − 1) · L^max_{i,q}`.
fn serialized_blocking(tasks: &TaskSet, resp: &ResponseBounds, i: TaskId, r: Time) -> Time {
    let me = tasks.task(i);
    let mut total = Time::ZERO;
    for q in me.resources() {
        let n = u64::from(me.total_requests(q));
        if n == 0 {
            continue;
        }
        let remote = windowed_remote_demand(tasks, resp, i, q, r);
        let own = max_mode_len(me, q).saturating_mul(n - 1);
        total = total.saturating_add(remote).saturating_add(own);
    }
    total
}

impl SchedAnalyzer for Dga {
    fn name(&self) -> &str {
        "DGA"
    }

    fn needs_resource_homes(&self) -> bool {
        false
    }

    fn analyze(&self, tasks: &TaskSet, partition: &Partition) -> SchedulabilityReport {
        let mut resp = ResponseBounds::new(tasks);
        let mut bounds: Vec<Option<TaskBound>> = vec![None; tasks.len()];
        let mut all_ok = true;
        for i in tasks.by_decreasing_priority() {
            let me = tasks.task(i);
            let lstar = me.longest_path_len();
            let off_path = me.wcet().saturating_sub(lstar);
            let m_i = (partition.cluster_size(i) as u64).max(1);
            let wcrt = fixed_point(
                lstar,
                me.deadline(),
                self.cfg.max_fixpoint_iterations,
                |r| {
                    lstar
                        .saturating_add(serialized_blocking(tasks, &resp, i, r))
                        .saturating_add(off_path.div_ceil(m_i))
                },
            );
            let ok = wcrt.is_some_and(|w| w <= me.deadline());
            if let Some(w) = wcrt {
                resp.set(i, w, me.deadline());
            }
            all_ok &= ok;
            bounds[i.index()] = Some(TaskBound {
                task: i,
                wcrt,
                schedulable: ok,
                breakdown: wcrt.map(|_| DelayBreakdown {
                    path_len: lstar,
                    intra_task_interference: off_path,
                    ..DelayBreakdown::default()
                }),
                signatures_evaluated: 1,
                truncated: false,
            });
        }
        SchedulabilityReport {
            task_bounds: bounds.into_iter().map(Option::unwrap).collect(),
            schedulable: all_ok,
            truncated: false,
        }
    }
}

/// DGA as a registry protocol: the generic Algorithm 1 loop with the
/// session's scratch (which this analysis ignores — it keeps no per-task
/// evaluation state).
impl ProtocolAnalysis for Dga {
    fn name(&self) -> &str {
        SchedAnalyzer::name(self)
    }

    fn tag(&self) -> char {
        'G'
    }

    fn description(&self) -> &str {
        "dependency-graph-style serialized demand bound (reader-writer aware)"
    }

    fn supports_rw(&self) -> bool {
        true
    }

    fn evaluate(
        &self,
        session: &mut AnalysisSession,
        tasks: &TaskSet,
        platform: &Platform,
        heuristic: ResourceHeuristic,
    ) -> PartitionOutcome {
        session.partition_with(tasks, platform, heuristic, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpcp::rw_fixture;
    use crate::Mpcp;
    use dpcp_model::fig1;

    #[test]
    fn hand_computed_rw_bound() {
        // τ0 in the shared fixture: serialized blocking is the full
        // windowed supply η_1 · 280 µs with η_1 = 2, i.e. 560 µs — the
        // FIFO cap without the per-request min — so r = 2 ms + 560 µs.
        let (partition, tasks) = rw_fixture();
        let report = Dga::new().analyze(&tasks, &partition);
        assert_eq!(report.task_bounds[0].wcrt, Some(Time::from_us(2_560)));
    }

    #[test]
    fn dominates_suspension_aware_mpcp() {
        for (partition, tasks) in [rw_fixture(), {
            let (_, p, t) = fig1::platform_and_partition().unwrap();
            (p, t)
        }] {
            let dga = Dga::new().analyze(&tasks, &partition);
            let sa = Mpcp::suspension_aware().analyze(&tasks, &partition);
            for (d, m) in dga.task_bounds.iter().zip(&sa.task_bounds) {
                assert!(d.wcrt.unwrap() >= m.wcrt.unwrap());
            }
        }
    }

    #[test]
    fn name_tag_and_rw_support() {
        let d = Dga::new();
        assert_eq!(SchedAnalyzer::name(&d), "DGA");
        assert_eq!(ProtocolAnalysis::tag(&d), 'G');
        assert!(ProtocolAnalysis::supports_rw(&d));
        assert!(!d.needs_resource_homes());
    }
}
