//! Baseline locking-protocol analyses for the DPCP-p evaluation
//! (Sec. VII-B): SPIN-SON, LPP and the resource-oblivious FED-FP bound.
//!
//! All three implement [`dpcp_core::SchedAnalyzer`], so they plug into the
//! same Algorithm 1 partitioning loop as DPCP-p itself — mirroring the
//! paper's setup where every protocol runs under federated scheduling.
//!
//! # Examples
//!
//! Compare all analyzers on the paper's Fig. 1 system:
//!
//! ```
//! use dpcp_baselines::{FedFp, Lpp, SpinSon};
//! use dpcp_core::partition::{algorithm1, DpcpAnalyzer, ResourceHeuristic};
//! use dpcp_core::{AnalysisConfig, SchedAnalyzer};
//! use dpcp_model::{fig1, Platform};
//!
//! let tasks = fig1::task_set()?;
//! let platform = Platform::new(4)?;
//! let h = ResourceHeuristic::WorstFitDecreasing;
//! let dpcp = DpcpAnalyzer::new(&tasks, AnalysisConfig::ep());
//! for analyzer in [
//!     &dpcp as &dyn SchedAnalyzer,
//!     &SpinSon::new(),
//!     &Lpp::new(),
//!     &FedFp::new(),
//! ] {
//!     assert!(algorithm1(&tasks, &platform, h, analyzer).is_schedulable());
//! }
//! # Ok::<(), dpcp_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
pub mod fed;
pub mod lpp;
pub mod spin;

pub use fed::FedFp;
pub use lpp::{Lpp, LppConfig};
pub use spin::{SpinConfig, SpinSon};
