//! Baseline locking-protocol analyses for the DPCP-p evaluation
//! (Sec. VII-B): SPIN-SON, LPP and the resource-oblivious FED-FP bound —
//! plus the reader-writer-aware extensions MPCP-SA, MPCP-SO and DGA.
//!
//! All of them implement [`dpcp_core::SchedAnalyzer`], so they plug into
//! the same Algorithm 1 partitioning loop as DPCP-p itself — mirroring the
//! paper's setup where every protocol runs under federated scheduling.
//! They also implement [`dpcp_core::ProtocolAnalysis`], and
//! [`standard_registry`] assembles the paper's five compared methods in
//! presentation order (`DPCP-p-EP`, `DPCP-p-EN`, `SPIN-SON`, `LPP`,
//! `FED-FP`), followed by the reader-writer methods (`MPCP-SA`,
//! `MPCP-SO`, `DGA`) and the search-in-the-loop placement wrapper
//! (`DPCP-p-EP/SEARCH`) — experiment harnesses resolve methods by name
//! from that registry instead of hand-wiring protocol calls.
//!
//! # Examples
//!
//! Compare all five methods on the paper's Fig. 1 system:
//!
//! ```
//! use dpcp_baselines::standard_registry;
//! use dpcp_core::{AnalysisConfig, AnalysisSession, ResourceHeuristic};
//! use dpcp_model::{fig1, Platform};
//!
//! let tasks = fig1::task_set()?;
//! let platform = Platform::new(4)?;
//! let registry = standard_registry();
//! let mut session = AnalysisSession::new(AnalysisConfig::ep());
//! for protocol in registry.iter() {
//!     let outcome = session.run(
//!         protocol,
//!         &tasks,
//!         &platform,
//!         ResourceHeuristic::WorstFitDecreasing,
//!     );
//!     assert!(outcome.is_schedulable(), "{}", protocol.name());
//! }
//! # Ok::<(), dpcp_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use dpcp_core::{DpcpProtocol, ProtocolRegistry, SearchConfig, SearchVariant};

mod common;
pub mod dga;
pub mod fed;
pub mod lpp;
pub mod mpcp;
pub mod spin;

pub use dga::{Dga, DgaConfig};
pub use fed::FedFp;
pub use lpp::{Lpp, LppConfig};
pub use mpcp::{Mpcp, MpcpConfig, MpcpVariant};
pub use spin::{SpinConfig, SpinSon};

/// The paper's five compared methods followed by the reader-writer
/// extensions and the placement-search wrapper, as one registry:
/// `DPCP-p-EP`, `DPCP-p-EN`, `SPIN-SON`, `LPP`, `FED-FP`, `MPCP-SA`,
/// `MPCP-SO`, `DGA`, `DPCP-p-EP/SEARCH`. Registration order is
/// the single source of truth for dispatch indices, CSV column order and
/// plot legends downstream — the paper's five stay in their original
/// slots, so every committed artifact keeps its columns.
pub fn standard_registry() -> ProtocolRegistry {
    let mut registry = dpcp_core::dpcp_protocols();
    registry
        .register(Box::new(SpinSon::new()))
        .expect("distinct baseline names");
    registry
        .register(Box::new(Lpp::new()))
        .expect("distinct baseline names");
    registry
        .register(Box::new(FedFp::new()))
        .expect("distinct baseline names");
    registry
        .register(Box::new(Mpcp::suspension_aware()))
        .expect("distinct baseline names");
    registry
        .register(Box::new(Mpcp::suspension_oblivious()))
        .expect("distinct baseline names");
    registry
        .register(Box::new(Dga::new()))
        .expect("distinct baseline names");
    registry
        .register(Box::new(SearchVariant::new(
            DpcpProtocol::ep(),
            SearchConfig::default(),
        )))
        .expect("distinct baseline names");
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_the_paper_order() {
        let registry = standard_registry();
        assert_eq!(
            registry.names(),
            [
                "DPCP-p-EP",
                "DPCP-p-EN",
                "SPIN-SON",
                "LPP",
                "FED-FP",
                "MPCP-SA",
                "MPCP-SO",
                "DGA",
                "DPCP-p-EP/SEARCH"
            ]
        );
        let tags: Vec<char> = registry.iter().map(|p| p.tag()).collect();
        assert_eq!(tags, ['E', 'N', 'S', 'L', 'F', 'M', 'O', 'G', 'X']);
        assert!(registry.iter().all(|p| !p.description().is_empty()));
        // Exactly the search wrapper advertises a probe budget.
        let budgets: Vec<bool> = registry
            .iter()
            .map(|p| p.search_budget().is_some())
            .collect();
        assert_eq!(budgets.iter().filter(|&&b| b).count(), 1);
        assert!(registry
            .resolve("DPCP-p-EP/SEARCH")
            .unwrap()
            .search_budget()
            .is_some());
    }

    #[test]
    fn rw_support_is_declared_per_protocol() {
        let registry = standard_registry();
        let rw: Vec<(String, bool)> = registry
            .iter()
            .map(|p| (p.name().to_string(), p.supports_rw()))
            .collect();
        for (name, supported) in rw {
            let expect = matches!(name.as_str(), "FED-FP" | "MPCP-SA" | "MPCP-SO" | "DGA");
            assert_eq!(supported, expect, "{name}");
        }
    }
}
