//! Baseline locking-protocol analyses for the DPCP-p evaluation
//! (Sec. VII-B): SPIN-SON, LPP and the resource-oblivious FED-FP bound.
//!
//! All three implement [`dpcp_core::SchedAnalyzer`], so they plug into the
//! same Algorithm 1 partitioning loop as DPCP-p itself — mirroring the
//! paper's setup where every protocol runs under federated scheduling.
//! They also implement [`dpcp_core::ProtocolAnalysis`], and
//! [`standard_registry`] assembles the paper's five compared methods in
//! presentation order (`DPCP-p-EP`, `DPCP-p-EN`, `SPIN-SON`, `LPP`,
//! `FED-FP`) — experiment harnesses resolve methods by name from that
//! registry instead of hand-wiring protocol calls.
//!
//! # Examples
//!
//! Compare all five methods on the paper's Fig. 1 system:
//!
//! ```
//! use dpcp_baselines::standard_registry;
//! use dpcp_core::{AnalysisConfig, AnalysisSession, ResourceHeuristic};
//! use dpcp_model::{fig1, Platform};
//!
//! let tasks = fig1::task_set()?;
//! let platform = Platform::new(4)?;
//! let registry = standard_registry();
//! let mut session = AnalysisSession::new(AnalysisConfig::ep());
//! for protocol in registry.iter() {
//!     let outcome = session.run(
//!         protocol,
//!         &tasks,
//!         &platform,
//!         ResourceHeuristic::WorstFitDecreasing,
//!     );
//!     assert!(outcome.is_schedulable(), "{}", protocol.name());
//! }
//! # Ok::<(), dpcp_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use dpcp_core::ProtocolRegistry;

mod common;
pub mod fed;
pub mod lpp;
pub mod spin;

pub use fed::FedFp;
pub use lpp::{Lpp, LppConfig};
pub use spin::{SpinConfig, SpinSon};

/// The paper's five compared methods as one registry, in presentation
/// order: `DPCP-p-EP`, `DPCP-p-EN`, `SPIN-SON`, `LPP`, `FED-FP`.
/// Registration order is the single source of truth for dispatch
/// indices, CSV column order and plot legends downstream.
pub fn standard_registry() -> ProtocolRegistry {
    let mut registry = dpcp_core::dpcp_protocols();
    registry
        .register(Box::new(SpinSon::new()))
        .expect("distinct baseline names");
    registry
        .register(Box::new(Lpp::new()))
        .expect("distinct baseline names");
    registry
        .register(Box::new(FedFp::new()))
        .expect("distinct baseline names");
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_the_paper_order() {
        let registry = standard_registry();
        assert_eq!(
            registry.names(),
            ["DPCP-p-EP", "DPCP-p-EN", "SPIN-SON", "LPP", "FED-FP"]
        );
        let tags: Vec<char> = registry.iter().map(|p| p.tag()).collect();
        assert_eq!(tags, ['E', 'N', 'S', 'L', 'F']);
        assert!(registry.iter().all(|p| !p.description().is_empty()));
    }
}
