//! LPP: suspension-based FIFO semaphores with boosted lock holders, in the
//! spirit of Jiang et al. (DAC 2019) — the paper's second baseline.
//!
//! Requests execute locally; a vertex that cannot take the lock *suspends*
//! so its processor can run other ready vertices, and lock holders run
//! with boosted priority so critical sections always progress. Compared to
//! spinning:
//!
//! - no processor time is wasted waiting — the interference term is just
//!   the off-path workload `C − L*` (good under heavy contention);
//! - queue depth is unbounded by cluster width: suspended vertices free
//!   their processors, so every pending request of a competing job can sit
//!   ahead in the FIFO queue (`N_{j,q}` rather than `min(m_j, N_{j,q})`),
//!   which hurts when single resources are requested many times.
//!
//! The recurrence is `r = L* + B^sem(r) + ⌈(C − L*) / m_i⌉` with `B^sem`
//! capped by the windowed request supply, exactly like the spin analysis.

use dpcp_core::analysis::{DelayBreakdown, SchedulabilityReport, TaskBound};
use dpcp_core::partition::PartitionOutcome;
use dpcp_core::{AnalysisSession, ProtocolAnalysis, ResourceHeuristic, SchedAnalyzer};
use dpcp_model::{Partition, Platform, TaskSet};

use crate::common::{baseline_wcrt, QueueDepth, ResponseBounds};

/// Configuration for the LPP analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LppConfig {
    /// Iteration budget for the response-time recurrence.
    pub max_fixpoint_iterations: usize,
}

impl Default for LppConfig {
    fn default() -> Self {
        LppConfig {
            max_fixpoint_iterations: 512,
        }
    }
}

/// The LPP analyzer (implements [`SchedAnalyzer`]).
///
/// # Examples
///
/// ```
/// use dpcp_baselines::Lpp;
/// use dpcp_core::{AnalysisConfig, AnalysisSession, ResourceHeuristic};
/// use dpcp_model::{fig1, Platform};
///
/// let tasks = fig1::task_set()?;
/// let platform = Platform::new(4)?;
/// let mut session = AnalysisSession::new(AnalysisConfig::ep());
/// let outcome = session.partition_with(
///     &tasks,
///     &platform,
///     ResourceHeuristic::WorstFitDecreasing,
///     &Lpp::new(),
/// );
/// assert!(outcome.is_schedulable());
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct Lpp {
    cfg: LppConfig,
}

impl Lpp {
    /// Creates the analyzer with default configuration.
    pub fn new() -> Self {
        Lpp::default()
    }

    /// Creates the analyzer with an explicit configuration.
    pub fn with_config(cfg: LppConfig) -> Self {
        Lpp { cfg }
    }
}

impl SchedAnalyzer for Lpp {
    fn name(&self) -> &str {
        "LPP"
    }

    fn needs_resource_homes(&self) -> bool {
        false
    }

    fn analyze(&self, tasks: &TaskSet, partition: &Partition) -> SchedulabilityReport {
        let mut resp = ResponseBounds::new(tasks);
        let mut bounds: Vec<Option<TaskBound>> = vec![None; tasks.len()];
        let mut all_ok = true;
        for i in tasks.by_decreasing_priority() {
            let me = tasks.task(i);
            let off_path = me.wcet().saturating_sub(me.longest_path_len());
            let wcrt = baseline_wcrt(
                tasks,
                partition,
                &resp,
                i,
                QueueDepth::PerJob,
                |_r| off_path,
                self.cfg.max_fixpoint_iterations,
            );
            let ok = wcrt.is_some_and(|w| w <= me.deadline());
            if let Some(w) = wcrt {
                resp.set(i, w, me.deadline());
            }
            all_ok &= ok;
            bounds[i.index()] = Some(TaskBound {
                task: i,
                wcrt,
                schedulable: ok,
                breakdown: wcrt.map(|_| DelayBreakdown {
                    path_len: me.longest_path_len(),
                    intra_task_interference: off_path,
                    ..DelayBreakdown::default()
                }),
                signatures_evaluated: 1,
                truncated: false,
            });
        }
        SchedulabilityReport {
            task_bounds: bounds.into_iter().map(Option::unwrap).collect(),
            schedulable: all_ok,
            truncated: false,
        }
    }
}

/// LPP as a registry protocol: the generic Algorithm 1 loop with the
/// session's scratch (which this analysis ignores — it keeps no per-task
/// evaluation state).
impl ProtocolAnalysis for Lpp {
    fn name(&self) -> &str {
        SchedAnalyzer::name(self)
    }

    fn tag(&self) -> char {
        'L'
    }

    fn description(&self) -> &str {
        "suspension-based FIFO semaphores, boosted lock holders (Jiang et al.)"
    }

    fn evaluate(
        &self,
        session: &mut AnalysisSession,
        tasks: &TaskSet,
        platform: &Platform,
        heuristic: ResourceHeuristic,
    ) -> PartitionOutcome {
        session.partition_with(tasks, platform, heuristic, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcp_model::{fig1, TaskId, Time};

    #[test]
    fn fig1_is_schedulable_under_lpp() {
        let (_, partition, tasks) = fig1::platform_and_partition().unwrap();
        let report = Lpp::new().analyze(&tasks, &partition);
        assert!(report.schedulable);
    }

    #[test]
    fn lpp_interference_excludes_spin_waste() {
        // On the same system, LPP's interference term must be at most
        // SPIN-SON's (it omits the spin inflation).
        let (_, partition, tasks) = fig1::platform_and_partition().unwrap();
        let lpp = Lpp::new().analyze(&tasks, &partition);
        let spin = crate::SpinSon::new().analyze(&tasks, &partition);
        for (l, s) in lpp.task_bounds.iter().zip(&spin.task_bounds) {
            let li = l.breakdown.unwrap().intra_task_interference;
            let si = s.breakdown.unwrap().intra_task_interference;
            assert!(li <= si);
        }
    }

    #[test]
    fn deep_queues_hurt_lpp_more_than_spin() {
        use dpcp_model::{DagTask, Platform, RequestSpec, ResourceId, VertexSpec};
        // One wide task hammers the resource; the analysed task requests
        // it once. Suspension admits 20 requests ahead; spin at most m = 4.
        let rid = ResourceId::new(0);
        let narrow = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(2),
                [RequestSpec::new(rid, 1)],
            ))
            .critical_section(rid, Time::from_us(100))
            .build()
            .unwrap();
        let dag = dpcp_model::Dag::new(4, []).unwrap();
        let wide = DagTask::builder(TaskId::new(1), Time::from_ms(10))
            .dag(dag)
            .vertex(VertexSpec::with_requests(
                Time::from_ms(3),
                [RequestSpec::new(rid, 10)],
            ))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(3),
                [RequestSpec::new(rid, 10)],
            ))
            .vertex(VertexSpec::new(Time::from_ms(3)))
            .vertex(VertexSpec::new(Time::from_ms(3)))
            .critical_section(rid, Time::from_us(100))
            .build()
            .unwrap();
        let tasks = TaskSet::new(vec![narrow, wide], 1).unwrap();
        let platform = Platform::new(5).unwrap();
        let p = |i: usize| dpcp_model::ProcessorId::new(i);
        let partition = Partition::local_execution(
            &tasks,
            &platform,
            vec![vec![p(0)], vec![p(1), p(2), p(3), p(4)]],
        )
        .unwrap();
        let lpp = Lpp::new().analyze(&tasks, &partition);
        let spin = crate::SpinSon::new().analyze(&tasks, &partition);
        // For the narrow task, direct blocking dominates: suspension sees
        // min(20·0.1, cap) vs spin's min(4·0.1, cap) per request.
        let l0 = lpp.task_bounds[0].wcrt.unwrap();
        let s0 = spin.task_bounds[0].wcrt.unwrap();
        assert!(l0 >= s0, "LPP {l0} should not beat SPIN {s0} here");
    }

    #[test]
    fn name_and_homes() {
        let l = Lpp::new();
        assert_eq!(SchedAnalyzer::name(&l), "LPP");
        assert!(!l.needs_resource_homes());
    }
}
