//! FED-FP: the resource-oblivious federated scheduling bound of Li et al.
//! (ECRTS 2014) — the paper's hypothetical upper baseline (Sec. VII-B).
//!
//! Shared resources are simply ignored: each heavy task on `m_i` dedicated
//! processors under any work-conserving scheduler meets
//! `r_i ≤ L*_i + (C_i − L*_i)/m_i` (Graham's bound). Since this analysis
//! charges no blocking at all, it accepts a superset of the task sets any
//! real locking protocol accepts — the curves it produces upper-bound every
//! other method, as in Fig. 2.

use dpcp_core::analysis::{DelayBreakdown, SchedulabilityReport, TaskBound};
use dpcp_core::partition::PartitionOutcome;
use dpcp_core::{AnalysisSession, ProtocolAnalysis, ResourceHeuristic, SchedAnalyzer};
use dpcp_model::{Partition, Platform, TaskSet, Time};

/// The FED-FP analyzer (implements [`SchedAnalyzer`]).
///
/// # Examples
///
/// ```
/// use dpcp_baselines::FedFp;
/// use dpcp_core::{AnalysisConfig, AnalysisSession, ResourceHeuristic};
/// use dpcp_model::{fig1, Platform};
///
/// let tasks = fig1::task_set()?;
/// let platform = Platform::new(4)?;
/// let mut session = AnalysisSession::new(AnalysisConfig::ep());
/// let outcome = session.partition_with(
///     &tasks,
///     &platform,
///     ResourceHeuristic::WorstFitDecreasing,
///     &FedFp::new(),
/// );
/// assert!(outcome.is_schedulable());
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct FedFp;

impl FedFp {
    /// Creates the analyzer.
    pub fn new() -> Self {
        FedFp
    }

    /// The Graham-style federated bound `L* + ⌈(C − L*)/m_i⌉` for one task.
    pub fn task_bound(wcet: Time, longest_path: Time, m_i: u64) -> Time {
        let off_path = wcet.saturating_sub(longest_path);
        longest_path.saturating_add(off_path.div_ceil(m_i.max(1)))
    }
}

impl SchedAnalyzer for FedFp {
    fn name(&self) -> &str {
        "FED-FP"
    }

    fn needs_resource_homes(&self) -> bool {
        false
    }

    fn analyze(&self, tasks: &TaskSet, partition: &Partition) -> SchedulabilityReport {
        let mut bounds = Vec::with_capacity(tasks.len());
        let mut all_ok = true;
        for t in tasks.iter() {
            let m_i = partition.cluster_size(t.id()) as u64;
            let wcrt = Self::task_bound(t.wcet(), t.longest_path_len(), m_i);
            let ok = wcrt <= t.deadline();
            all_ok &= ok;
            bounds.push(TaskBound {
                task: t.id(),
                wcrt: Some(wcrt),
                schedulable: ok,
                breakdown: Some(DelayBreakdown {
                    path_len: t.longest_path_len(),
                    intra_task_interference: t.wcet().saturating_sub(t.longest_path_len()),
                    ..DelayBreakdown::default()
                }),
                signatures_evaluated: 1,
                truncated: false,
            });
        }
        SchedulabilityReport {
            task_bounds: bounds,
            schedulable: all_ok,
            truncated: false,
        }
    }
}

/// FED-FP as a registry protocol: the generic Algorithm 1 loop with the
/// session's scratch (which this analysis ignores — it is stateless).
impl ProtocolAnalysis for FedFp {
    fn name(&self) -> &str {
        SchedAnalyzer::name(self)
    }

    fn tag(&self) -> char {
        'F'
    }

    fn description(&self) -> &str {
        "resource-oblivious federated bound (hypothetical upper baseline)"
    }

    // Resource-oblivious: ignoring every request is as valid for reads as
    // for writes, so reader-writer task sets are trivially in scope.
    fn supports_rw(&self) -> bool {
        true
    }

    fn evaluate(
        &self,
        session: &mut AnalysisSession,
        tasks: &TaskSet,
        platform: &Platform,
        heuristic: ResourceHeuristic,
    ) -> PartitionOutcome {
        session.partition_with(tasks, platform, heuristic, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcp_model::fig1;

    #[test]
    fn bound_formula() {
        // C = 19, L* = 10, m = 2 → 10 + ⌈9/2⌉ = 15.
        assert_eq!(
            FedFp::task_bound(fig1::unit() * 19, fig1::unit() * 10, 2),
            Time::from_us(14_500).max(fig1::unit() * 14 + Time::from_us(500))
        );
        // Integer check: 9 units / 2 = 4.5 → 4500µs with 1ms units.
        assert_eq!(
            FedFp::task_bound(fig1::unit() * 19, fig1::unit() * 10, 2).as_us(),
            14_500
        );
        // m = 1 degenerates to C.
        assert_eq!(
            FedFp::task_bound(fig1::unit() * 19, fig1::unit() * 10, 1),
            fig1::unit() * 19
        );
    }

    #[test]
    fn fig1_schedulable_and_blocking_free() {
        let (_, partition, tasks) = fig1::platform_and_partition().unwrap();
        let fed = FedFp::new();
        let report = fed.analyze(&tasks, &partition);
        assert!(report.schedulable);
        for tb in &report.task_bounds {
            let b = tb.breakdown.unwrap();
            assert_eq!(b.inter_task_blocking, Time::ZERO);
            assert_eq!(b.agent_interference, Time::ZERO);
        }
        assert_eq!(SchedAnalyzer::name(&fed), "FED-FP");
        assert!(!fed.needs_resource_homes());
    }

    #[test]
    fn fed_fp_dominates_dpcp_bounds() {
        // Resource-oblivious bounds can only be smaller or equal.
        let (_, partition, tasks) = fig1::platform_and_partition().unwrap();
        let fed = FedFp::new().analyze(&tasks, &partition);
        let dpcp =
            AnalysisSession::new(dpcp_core::AnalysisConfig::ep()).analyze(&tasks, &partition);
        for (f, d) in fed.task_bounds.iter().zip(&dpcp.task_bounds) {
            assert!(f.wcrt.unwrap() <= d.wcrt.unwrap());
        }
    }
}
