//! Shared machinery for the local-execution baselines (SPIN-SON, LPP,
//! the MPCP variants and DGA).
//!
//! Both baselines execute requests *locally* — a vertex acquires the lock
//! on whatever processor it runs on — and serve lock queues FIFO. Their
//! analyses therefore share the same skeleton; what differs is (a) how
//! many requests can sit ahead of a fresh request (spinning bounds this by
//! one per remote processor, suspension does not) and (b) whether waiting
//! wastes processor time (spinning does, suspension does not).
//!
//! Neither analysis appears verbatim in the DPCP-p paper, and the original
//! texts ([6], [11]) are not available here; these are faithful
//! re-derivations in the same response-time framework — see DESIGN.md
//! ("Substitutions") for the argument that they preserve the behaviours
//! the comparison rests on.

use dpcp_core::analysis::request::fixed_point;
use dpcp_model::{eta_jobs, DagTask, Partition, ResourceId, TaskId, TaskSet, Time};

/// How deep the FIFO queue ahead of one request can be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueueDepth {
    /// Non-preemptive spinning: at most one in-flight request per processor
    /// of each competing task (`min(m_j, N_{j,q})` requests ahead).
    PerProcessor,
    /// Suspension: every pending request of a competing job can be ahead
    /// (`N_{j,q}` requests).
    PerJob,
}

/// Evolving per-task response bounds for `η_j` (same convention as the
/// DPCP-p analysis: `D_j` until a task has been analysed).
#[derive(Debug)]
pub(crate) struct ResponseBounds {
    resp: Vec<Time>,
}

impl ResponseBounds {
    pub(crate) fn new(tasks: &TaskSet) -> Self {
        ResponseBounds {
            resp: tasks.iter().map(DagTask::deadline).collect(),
        }
    }

    pub(crate) fn set(&mut self, j: TaskId, bound: Time, deadline: Time) {
        self.resp[j.index()] = bound.min(deadline);
    }

    pub(crate) fn eta(&self, tasks: &TaskSet, j: TaskId, window: Time) -> u64 {
        eta_jobs(window, self.resp[j.index()], tasks.task(j).period())
    }
}

/// The worst critical-section length task `j` can occupy one FIFO slot of
/// `ℓ_q` with, across the access modes it actually uses. Write-only tasks
/// degenerate to `L_{j,q}` exactly.
pub(crate) fn max_mode_len(task: &DagTask, q: ResourceId) -> Time {
    let write = task.cs_length(q).unwrap_or(Time::ZERO);
    if task.total_reads(q) > 0 {
        write.max(task.read_cs_length(q).unwrap_or(write))
    } else {
        write
    }
}

/// The per-request FIFO wait bound `δ_q` for task `i` requesting `ℓ_q`:
/// one critical section per queue slot ahead. Mode-aware: a full per-job
/// queue contributes its exact serialized demand (writes at `L_{j,q}`,
/// reads at `L^R_{j,q}`); truncated queues charge the worst mode per slot.
pub(crate) fn per_request_delay(
    tasks: &TaskSet,
    partition: &Partition,
    i: TaskId,
    q: ResourceId,
    depth: QueueDepth,
) -> Time {
    let me = tasks.task(i);
    let mut delay = Time::ZERO;
    for &j in tasks.users_of(q) {
        if j == i {
            continue;
        }
        let other = tasks.task(j);
        let contribution = match depth {
            QueueDepth::PerProcessor => {
                let ahead =
                    (partition.cluster_size(j) as u64).min(u64::from(other.total_requests(q)));
                max_mode_len(other, q).saturating_mul(ahead)
            }
            // All N_{j,q} pending requests ahead: the serialized per-mode
            // demand, identical to N·L on write-only tasks.
            QueueDepth::PerJob => other.cs_demand(q),
        };
        delay = delay.saturating_add(contribution);
    }
    // Intra-task contenders: other vertices of the same job, bounded by the
    // cluster width minus the requesting vertex itself.
    let own_n = me.total_requests(q);
    if own_n > 1 {
        let ahead = match depth {
            QueueDepth::PerProcessor => {
                (partition.cluster_size(i) as u64 - 1).min(u64::from(own_n - 1))
            }
            QueueDepth::PerJob => u64::from(own_n - 1),
        };
        let len = max_mode_len(me, q);
        delay = delay.saturating_add(len.saturating_mul(ahead));
    }
    delay
}

/// The windowed cap on total blocking from other tasks on `ℓ_q` within a
/// window of length `r`: `Σ_{j≠i} η_j(r) · (N^W_{j,q}·L_{j,q} +
/// N^R_{j,q}·L^R_{j,q})` — the per-job serialized demand, which is
/// `N_{j,q} · L_{j,q}` exactly on write-only tasks.
pub(crate) fn windowed_remote_demand(
    tasks: &TaskSet,
    resp: &ResponseBounds,
    i: TaskId,
    q: ResourceId,
    r: Time,
) -> Time {
    let mut total = Time::ZERO;
    for &j in tasks.users_of(q) {
        if j == i {
            continue;
        }
        let other = tasks.task(j);
        let demand = other.cs_demand(q);
        total = total.saturating_add(demand.saturating_mul(resp.eta(tasks, j, r)));
    }
    total
}

/// Total direct blocking of a job across all its requests at window `r`:
/// `Σ_q min(N_{i,q} · δ_q, windowed_remote_q(r) + (N_{i,q}−1) · L_{i,q})`.
pub(crate) fn direct_blocking(
    tasks: &TaskSet,
    partition: &Partition,
    resp: &ResponseBounds,
    i: TaskId,
    depth: QueueDepth,
    r: Time,
) -> Time {
    let me = tasks.task(i);
    let mut total = Time::ZERO;
    for q in me.resources() {
        let n = u64::from(me.total_requests(q));
        if n == 0 {
            continue;
        }
        let delta = per_request_delay(tasks, partition, i, q, depth);
        let per_request_total = delta.saturating_mul(n);
        let own_len = max_mode_len(me, q);
        let cap = windowed_remote_demand(tasks, resp, i, q, r)
            .saturating_add(own_len.saturating_mul(n - 1));
        total = total.saturating_add(per_request_total.min(cap));
    }
    total
}

/// Runs the baseline response-time recurrence
/// `r = L* + B(r) + ⌈extra_interference(r)/m_i⌉` to its least fixed point.
pub(crate) fn baseline_wcrt(
    tasks: &TaskSet,
    partition: &Partition,
    resp: &ResponseBounds,
    i: TaskId,
    depth: QueueDepth,
    extra_interference: impl Fn(Time) -> Time,
    max_iters: usize,
) -> Option<Time> {
    let me = tasks.task(i);
    let lstar = me.longest_path_len();
    let m_i = partition.cluster_size(i) as u64;
    fixed_point(lstar, me.deadline(), max_iters, |r| {
        let blocking = direct_blocking(tasks, partition, resp, i, depth, r);
        lstar
            .saturating_add(blocking)
            .saturating_add(extra_interference(r).div_ceil(m_i.max(1)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcp_model::fig1;

    fn setup() -> (Partition, TaskSet) {
        let (_, part, ts) = fig1::platform_and_partition().unwrap();
        (part, ts)
    }

    #[test]
    fn per_request_delay_counts_remote_and_intra() {
        let (part, ts) = setup();
        let i = TaskId::new(0);
        // ℓ1: one remote user (τ_j, 1 request, cluster 2 → min(2,1)=1 slot
        // of 3u); own N = 1 so no intra term.
        assert_eq!(
            per_request_delay(
                &ts,
                &part,
                i,
                fig1::GLOBAL_RESOURCE,
                QueueDepth::PerProcessor
            ),
            fig1::unit() * 3
        );
        // ℓ2 (local, 2 own requests): intra only: min(m−1, 1)·2u = 2u.
        assert_eq!(
            per_request_delay(
                &ts,
                &part,
                i,
                fig1::LOCAL_RESOURCE,
                QueueDepth::PerProcessor
            ),
            fig1::unit() * 2
        );
        // Per-job depth matches here because N ≤ m everywhere.
        assert_eq!(
            per_request_delay(&ts, &part, i, fig1::GLOBAL_RESOURCE, QueueDepth::PerJob),
            fig1::unit() * 3
        );
    }

    #[test]
    fn per_job_depth_exceeds_per_processor_when_requests_pile_up() {
        use dpcp_model::{DagTask, Platform, RequestSpec, VertexSpec};
        let rid = ResourceId::new(0);
        let mk = |id: usize, n: u32| {
            DagTask::builder(TaskId::new(id), Time::from_ms(10))
                .vertex(VertexSpec::with_requests(
                    Time::from_ms(2),
                    [RequestSpec::new(rid, n)],
                ))
                .critical_section(rid, Time::from_us(100))
                .build()
                .unwrap()
        };
        let ts = TaskSet::new(vec![mk(0, 1), mk(1, 8)], 1).unwrap();
        let platform = Platform::new(2).unwrap();
        let part = Partition::local_execution(
            &ts,
            &platform,
            vec![
                vec![dpcp_model::ProcessorId::new(0)],
                vec![dpcp_model::ProcessorId::new(1)],
            ],
        )
        .unwrap();
        let spin = per_request_delay(&ts, &part, TaskId::new(0), rid, QueueDepth::PerProcessor);
        let susp = per_request_delay(&ts, &part, TaskId::new(0), rid, QueueDepth::PerJob);
        // Spin: min(m_1 = 1, 8) = 1 slot; suspension: all 8 pending.
        assert_eq!(spin, Time::from_us(100));
        assert_eq!(susp, Time::from_us(800));
    }

    #[test]
    fn windowed_cap_limits_blocking() {
        let (part, ts) = setup();
        let resp = ResponseBounds::new(&ts);
        let i = TaskId::new(0);
        // Window 10u: τ_j has η = ⌈40/30⌉ = 2 jobs × 1 request × 3u = 6u.
        assert_eq!(
            windowed_remote_demand(&ts, &resp, i, fig1::GLOBAL_RESOURCE, fig1::unit() * 10),
            fig1::unit() * 6
        );
        let b = direct_blocking(
            &ts,
            &part,
            &resp,
            i,
            QueueDepth::PerProcessor,
            fig1::unit() * 10,
        );
        // ℓ1: min(1·3u, 6u + 0) = 3u; ℓ2: min(2·2u, 0 + 1·2u) = 2u.
        assert_eq!(b, fig1::unit() * 5);
    }

    #[test]
    fn baseline_recurrence_converges_on_fig1() {
        let (part, ts) = setup();
        let resp = ResponseBounds::new(&ts);
        let i = TaskId::new(0);
        let me = ts.task(i);
        let slack = me.wcet().saturating_sub(me.longest_path_len());
        let r = baseline_wcrt(
            &ts,
            &part,
            &resp,
            i,
            QueueDepth::PerProcessor,
            |_| slack,
            128,
        )
        .unwrap();
        assert!(r >= me.longest_path_len());
        assert!(r <= me.deadline());
    }
}
