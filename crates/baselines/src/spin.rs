//! SPIN-SON: FIFO non-preemptive spin locks for federated DAG tasks, in
//! the spirit of Dinh et al. (IEEE TPDS 2018) — the paper's first baseline.
//!
//! Requests execute locally; a requesting vertex *busy-waits* on its
//! processor until the lock arrives. Two consequences shape the analysis:
//!
//! - queue depth is bounded: a task can have at most one in-flight spin
//!   per processor of its cluster, so a fresh request waits at most
//!   `min(m_j, N_{j,q})` critical sections per competing task (good under
//!   light contention);
//! - every wait burns processor time: the spinning of off-path vertices
//!   inflates the intra-cluster interference term (costly under heavy
//!   contention).
//!
//! The response-time recurrence mirrors Theorem 1's shape:
//! `r = L* + B^spin(r) + ⌈(C − L* + S^spin) / m_i⌉`, with the direct
//! blocking `B^spin` capped by the windowed request supply of the other
//! tasks, and `S^spin` the spin time off-path requests can burn.

use dpcp_core::analysis::{DelayBreakdown, SchedulabilityReport, TaskBound};
use dpcp_core::partition::PartitionOutcome;
use dpcp_core::{AnalysisSession, ProtocolAnalysis, ResourceHeuristic, SchedAnalyzer};
use dpcp_model::{Partition, Platform, TaskId, TaskSet, Time};

use crate::common::{baseline_wcrt, per_request_delay, QueueDepth, ResponseBounds};

/// Configuration for the SPIN-SON analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinConfig {
    /// Iteration budget for the response-time recurrence.
    pub max_fixpoint_iterations: usize,
}

impl Default for SpinConfig {
    fn default() -> Self {
        SpinConfig {
            max_fixpoint_iterations: 512,
        }
    }
}

/// The SPIN-SON analyzer (implements [`SchedAnalyzer`]).
///
/// # Examples
///
/// ```
/// use dpcp_baselines::SpinSon;
/// use dpcp_core::{AnalysisConfig, AnalysisSession, ResourceHeuristic};
/// use dpcp_model::{fig1, Platform};
///
/// let tasks = fig1::task_set()?;
/// let platform = Platform::new(4)?;
/// let mut session = AnalysisSession::new(AnalysisConfig::ep());
/// let outcome = session.partition_with(
///     &tasks,
///     &platform,
///     ResourceHeuristic::WorstFitDecreasing,
///     &SpinSon::new(),
/// );
/// assert!(outcome.is_schedulable());
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct SpinSon {
    cfg: SpinConfig,
}

impl SpinSon {
    /// Creates the analyzer with default configuration.
    pub fn new() -> Self {
        SpinSon::default()
    }

    /// Creates the analyzer with an explicit configuration.
    pub fn with_config(cfg: SpinConfig) -> Self {
        SpinSon { cfg }
    }

    /// The total spin time the job's own requests can burn
    /// (`Σ_q N_{i,q} · δ_q`) — charged as intra-cluster interference.
    fn spin_inflation(tasks: &TaskSet, partition: &Partition, i: TaskId) -> Time {
        let me = tasks.task(i);
        let mut total = Time::ZERO;
        for q in me.resources() {
            let n = u64::from(me.total_requests(q));
            let delta = per_request_delay(tasks, partition, i, q, QueueDepth::PerProcessor);
            total = total.saturating_add(delta.saturating_mul(n));
        }
        total
    }
}

impl SchedAnalyzer for SpinSon {
    fn name(&self) -> &str {
        "SPIN-SON"
    }

    fn needs_resource_homes(&self) -> bool {
        false
    }

    fn analyze(&self, tasks: &TaskSet, partition: &Partition) -> SchedulabilityReport {
        let mut resp = ResponseBounds::new(tasks);
        let mut bounds: Vec<Option<TaskBound>> = vec![None; tasks.len()];
        let mut all_ok = true;
        for i in tasks.by_decreasing_priority() {
            let me = tasks.task(i);
            let spin = Self::spin_inflation(tasks, partition, i);
            let off_path = me.wcet().saturating_sub(me.longest_path_len());
            let wcrt = baseline_wcrt(
                tasks,
                partition,
                &resp,
                i,
                QueueDepth::PerProcessor,
                |_r| off_path.saturating_add(spin),
                self.cfg.max_fixpoint_iterations,
            );
            let ok = wcrt.is_some_and(|w| w <= me.deadline());
            if let Some(w) = wcrt {
                resp.set(i, w, me.deadline());
            }
            all_ok &= ok;
            bounds[i.index()] = Some(TaskBound {
                task: i,
                wcrt,
                schedulable: ok,
                breakdown: wcrt.map(|_| DelayBreakdown {
                    path_len: me.longest_path_len(),
                    intra_task_interference: off_path.saturating_add(spin),
                    ..DelayBreakdown::default()
                }),
                signatures_evaluated: 1,
                truncated: false,
            });
        }
        SchedulabilityReport {
            task_bounds: bounds.into_iter().map(Option::unwrap).collect(),
            schedulable: all_ok,
            truncated: false,
        }
    }
}

/// SPIN-SON as a registry protocol: the generic Algorithm 1 loop with
/// the session's scratch (which this analysis ignores — it keeps no
/// per-task evaluation state).
impl ProtocolAnalysis for SpinSon {
    fn name(&self) -> &str {
        SchedAnalyzer::name(self)
    }

    fn tag(&self) -> char {
        'S'
    }

    fn description(&self) -> &str {
        "FIFO non-preemptive spin locks, local execution (Dinh et al.)"
    }

    fn evaluate(
        &self,
        session: &mut AnalysisSession,
        tasks: &TaskSet,
        platform: &Platform,
        heuristic: ResourceHeuristic,
    ) -> PartitionOutcome {
        session.partition_with(tasks, platform, heuristic, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcp_model::fig1;

    #[test]
    fn fig1_is_schedulable_under_spin() {
        let (_, partition, tasks) = fig1::platform_and_partition().unwrap();
        let report = SpinSon::new().analyze(&tasks, &partition);
        assert!(report.schedulable);
        for tb in &report.task_bounds {
            assert!(tb.wcrt.unwrap() <= tasks.task(tb.task).deadline());
        }
    }

    #[test]
    fn spin_inflation_counts_all_own_requests() {
        let (_, partition, tasks) = fig1::platform_and_partition().unwrap();
        // τ_i: ℓ1 once (δ = 3u), ℓ2 twice (δ = 2u) → 3 + 2·2 = 7u.
        assert_eq!(
            SpinSon::spin_inflation(&tasks, &partition, TaskId::new(0)),
            fig1::unit() * 7
        );
        // τ_j: ℓ1 once (remote τ_i: min(2,1)·3u = 3u).
        assert_eq!(
            SpinSon::spin_inflation(&tasks, &partition, TaskId::new(1)),
            fig1::unit() * 3
        );
    }

    #[test]
    fn name_and_homes() {
        let s = SpinSon::new();
        assert_eq!(SchedAnalyzer::name(&s), "SPIN-SON");
        assert!(!s.needs_resource_homes());
    }

    #[test]
    fn heavier_contention_inflates_spin_bounds() {
        use dpcp_model::{DagTask, Platform, RequestSpec, ResourceId, VertexSpec};
        let rid = ResourceId::new(0);
        let mk = |id: usize, n: u32| {
            DagTask::builder(TaskId::new(id), Time::from_ms(10))
                .vertex(VertexSpec::with_requests(
                    Time::from_ms(3),
                    [RequestSpec::new(rid, n)],
                ))
                .critical_section(rid, Time::from_us(100))
                .build()
                .unwrap()
        };
        let platform = Platform::new(2).unwrap();
        let light = TaskSet::new(vec![mk(0, 1), mk(1, 1)], 1).unwrap();
        let heavy = TaskSet::new(vec![mk(0, 20), mk(1, 20)], 1).unwrap();
        let clusters = |ts: &TaskSet| {
            Partition::local_execution(
                ts,
                &platform,
                vec![
                    vec![dpcp_model::ProcessorId::new(0)],
                    vec![dpcp_model::ProcessorId::new(1)],
                ],
            )
            .unwrap()
        };
        let r_light = SpinSon::new().analyze(&light, &clusters(&light));
        let r_heavy = SpinSon::new().analyze(&heavy, &clusters(&heavy));
        assert!(r_heavy.task_bounds[0].wcrt.unwrap() > r_light.task_bounds[0].wcrt.unwrap());
    }
}
