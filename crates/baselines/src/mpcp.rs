//! MPCP-style suspension-based semaphores in the two classic accounting
//! variants — suspension-aware (`MPCP-SA`) and suspension-oblivious
//! (`MPCP-SO`) — extended to reader-writer requests.
//!
//! Requests execute locally under FIFO queueing with boosted lock holders
//! (the same runtime the simulator implements for home-less partitions);
//! what distinguishes the pair is how the time a job spends *suspended* on
//! a lock queue is charged:
//!
//! - **MPCP-SA** (suspension-aware): blocking appears once, as an additive
//!   term on the critical path. On write-only task sets this coincides
//!   with the LPP bound — deliberately, since both model suspension-based
//!   FIFO semaphores; the variants earn their keep on reader-writer sets,
//!   which LPP refuses.
//! - **MPCP-SO** (suspension-oblivious): suspension is folded into the
//!   processor demand as if the job were executing while it waits, i.e.
//!   the blocking also inflates the interference term. `MPCP-SO` bounds
//!   therefore dominate (are never smaller than) `MPCP-SA` bounds.
//!
//! Both variants are reader-writer aware: per-mode critical-section
//! lengths enter every queue and window term (writes at `L_{j,q}`, reads
//! at `L^R_{j,q}`). Reader concurrency is *not* credited — a sound FIFO
//! bound cannot assume adjacent reads batch — so the accounting stays
//! serialized and upper-bounds the simulator's read-sharing runtime.

use dpcp_core::analysis::{DelayBreakdown, SchedulabilityReport, TaskBound};
use dpcp_core::partition::PartitionOutcome;
use dpcp_core::{AnalysisSession, ProtocolAnalysis, ResourceHeuristic, SchedAnalyzer};
#[cfg(test)]
use dpcp_model::Time;
use dpcp_model::{Partition, Platform, TaskSet};

use crate::common::{baseline_wcrt, direct_blocking, QueueDepth, ResponseBounds};

/// Configuration for the MPCP analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpcpConfig {
    /// Iteration budget for the response-time recurrence.
    pub max_fixpoint_iterations: usize,
}

impl Default for MpcpConfig {
    fn default() -> Self {
        MpcpConfig {
            max_fixpoint_iterations: 512,
        }
    }
}

/// Which suspension-accounting variant an [`Mpcp`] instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpcpVariant {
    /// Suspension-aware: blocking is charged once, on the critical path.
    SuspensionAware,
    /// Suspension-oblivious: blocking additionally inflates the
    /// interference demand (suspension counted as execution).
    SuspensionOblivious,
}

/// The MPCP analyzer (implements [`SchedAnalyzer`]); construct via
/// [`Mpcp::suspension_aware`] or [`Mpcp::suspension_oblivious`].
///
/// # Examples
///
/// ```
/// use dpcp_baselines::Mpcp;
/// use dpcp_core::{AnalysisConfig, AnalysisSession, ResourceHeuristic};
/// use dpcp_model::{fig1, Platform};
///
/// let tasks = fig1::task_set()?;
/// let platform = Platform::new(4)?;
/// let mut session = AnalysisSession::new(AnalysisConfig::ep());
/// let outcome = session.partition_with(
///     &tasks,
///     &platform,
///     ResourceHeuristic::WorstFitDecreasing,
///     &Mpcp::suspension_aware(),
/// );
/// assert!(outcome.is_schedulable());
/// # Ok::<(), dpcp_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Mpcp {
    cfg: MpcpConfig,
    variant: MpcpVariant,
}

impl Mpcp {
    /// The suspension-aware variant (`MPCP-SA`).
    pub fn suspension_aware() -> Self {
        Mpcp {
            cfg: MpcpConfig::default(),
            variant: MpcpVariant::SuspensionAware,
        }
    }

    /// The suspension-oblivious variant (`MPCP-SO`).
    pub fn suspension_oblivious() -> Self {
        Mpcp {
            cfg: MpcpConfig::default(),
            variant: MpcpVariant::SuspensionOblivious,
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, cfg: MpcpConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The variant this instance runs.
    pub fn variant(&self) -> MpcpVariant {
        self.variant
    }
}

impl SchedAnalyzer for Mpcp {
    fn name(&self) -> &str {
        match self.variant {
            MpcpVariant::SuspensionAware => "MPCP-SA",
            MpcpVariant::SuspensionOblivious => "MPCP-SO",
        }
    }

    fn needs_resource_homes(&self) -> bool {
        false
    }

    fn analyze(&self, tasks: &TaskSet, partition: &Partition) -> SchedulabilityReport {
        let mut resp = ResponseBounds::new(tasks);
        let mut bounds: Vec<Option<TaskBound>> = vec![None; tasks.len()];
        let mut all_ok = true;
        for i in tasks.by_decreasing_priority() {
            let me = tasks.task(i);
            let off_path = me.wcet().saturating_sub(me.longest_path_len());
            let variant = self.variant;
            let wcrt =
                baseline_wcrt(
                    tasks,
                    partition,
                    &resp,
                    i,
                    QueueDepth::PerJob,
                    |r| match variant {
                        MpcpVariant::SuspensionAware => off_path,
                        // s-oblivious: the blocking re-enters the recurrence as
                        // processor demand spread over the cluster.
                        MpcpVariant::SuspensionOblivious => off_path.saturating_add(
                            direct_blocking(tasks, partition, &resp, i, QueueDepth::PerJob, r),
                        ),
                    },
                    self.cfg.max_fixpoint_iterations,
                );
            let ok = wcrt.is_some_and(|w| w <= me.deadline());
            if let Some(w) = wcrt {
                resp.set(i, w, me.deadline());
            }
            all_ok &= ok;
            bounds[i.index()] = Some(TaskBound {
                task: i,
                wcrt,
                schedulable: ok,
                breakdown: wcrt.map(|_| DelayBreakdown {
                    path_len: me.longest_path_len(),
                    intra_task_interference: off_path,
                    ..DelayBreakdown::default()
                }),
                signatures_evaluated: 1,
                truncated: false,
            });
        }
        SchedulabilityReport {
            task_bounds: bounds.into_iter().map(Option::unwrap).collect(),
            schedulable: all_ok,
            truncated: false,
        }
    }
}

/// MPCP as a registry protocol: the generic Algorithm 1 loop with the
/// session's scratch (which this analysis ignores — it keeps no per-task
/// evaluation state).
impl ProtocolAnalysis for Mpcp {
    fn name(&self) -> &str {
        SchedAnalyzer::name(self)
    }

    fn tag(&self) -> char {
        match self.variant {
            MpcpVariant::SuspensionAware => 'M',
            MpcpVariant::SuspensionOblivious => 'O',
        }
    }

    fn description(&self) -> &str {
        match self.variant {
            MpcpVariant::SuspensionAware => {
                "MPCP semaphores, suspension-aware accounting (reader-writer aware)"
            }
            MpcpVariant::SuspensionOblivious => {
                "MPCP semaphores, suspension-oblivious accounting (reader-writer aware)"
            }
        }
    }

    fn supports_rw(&self) -> bool {
        true
    }

    fn evaluate(
        &self,
        session: &mut AnalysisSession,
        tasks: &TaskSet,
        platform: &Platform,
        heuristic: ResourceHeuristic,
    ) -> PartitionOutcome {
        session.partition_with(tasks, platform, heuristic, self)
    }
}

/// Builds the two-task reader-writer fixture used by the hand-computed
/// tests below (and by the DGA tests): a high-priority writer and a
/// low-priority mixed reader-writer sharing one resource, each on its own
/// processor.
#[cfg(test)]
pub(crate) fn rw_fixture() -> (Partition, TaskSet) {
    use dpcp_model::{DagTask, ProcessorId, RequestSpec, ResourceId, TaskId, VertexSpec};
    let rid = ResourceId::new(0);
    // τ0: T = D = 10 ms, one vertex, C = L* = 2 ms, one write (L_w = 100 µs).
    let t0 = DagTask::builder(TaskId::new(0), Time::from_ms(10))
        .vertex(VertexSpec::with_requests(
            Time::from_ms(2),
            [RequestSpec::write(rid, 1)],
        ))
        .critical_section(rid, Time::from_us(100))
        .build()
        .unwrap();
    // τ1: T = D = 100 ms, one vertex, C = L* = 10 ms, two writes
    // (L_w = 100 µs) and four reads (L_r = 20 µs).
    let t1 = DagTask::builder(TaskId::new(1), Time::from_ms(100))
        .vertex(VertexSpec::with_requests(
            Time::from_ms(10),
            [RequestSpec::write(rid, 2), RequestSpec::read(rid, 4)],
        ))
        .critical_section(rid, Time::from_us(100))
        .read_critical_section(rid, Time::from_us(20))
        .build()
        .unwrap();
    let tasks = TaskSet::new(vec![t0, t1], 1).unwrap();
    let platform = Platform::new(2).unwrap();
    let partition = Partition::local_execution(
        &tasks,
        &platform,
        vec![vec![ProcessorId::new(0)], vec![ProcessorId::new(1)]],
    )
    .unwrap();
    (partition, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpcp_model::fig1;

    #[test]
    fn hand_computed_rw_bounds() {
        // τ1's per-job serialized demand on ℓ0 is 2·100 + 4·20 = 280 µs.
        // τ0 (C = L* = 2 ms, one request): δ = 280 µs, windowed cap with
        // η_1 = ⌈(r + 100 ms)/100 ms⌉ = 2 gives 560 µs, so B = 280 µs.
        //   SA: r = 2 ms + 280 µs = 2.28 ms.
        //   SO: r = 2 ms + 280 µs + ⌈280 µs / 1⌉ = 2.56 ms.
        let (partition, tasks) = rw_fixture();
        let sa = Mpcp::suspension_aware().analyze(&tasks, &partition);
        let so = Mpcp::suspension_oblivious().analyze(&tasks, &partition);
        assert_eq!(sa.task_bounds[0].wcrt, Some(Time::from_us(2_280)));
        assert_eq!(so.task_bounds[0].wcrt, Some(Time::from_us(2_560)));
        assert!(sa.schedulable && so.schedulable);
    }

    #[test]
    fn read_lengths_enter_the_bound() {
        // The same fixture with the reads priced at the write length
        // (drop the explicit read length): demand becomes 6·100 = 600 µs,
        // so τ0's SA bound grows from 2.28 ms to 2.6 ms.
        use dpcp_model::{
            DagTask, Platform, ProcessorId, RequestSpec, ResourceId, TaskId, VertexSpec,
        };
        let rid = ResourceId::new(0);
        let t0 = DagTask::builder(TaskId::new(0), Time::from_ms(10))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(2),
                [RequestSpec::write(rid, 1)],
            ))
            .critical_section(rid, Time::from_us(100))
            .build()
            .unwrap();
        let t1 = DagTask::builder(TaskId::new(1), Time::from_ms(100))
            .vertex(VertexSpec::with_requests(
                Time::from_ms(10),
                [RequestSpec::write(rid, 2), RequestSpec::read(rid, 4)],
            ))
            .critical_section(rid, Time::from_us(100))
            .build()
            .unwrap();
        let tasks = TaskSet::new(vec![t0, t1], 1).unwrap();
        let platform = Platform::new(2).unwrap();
        let partition = Partition::local_execution(
            &tasks,
            &platform,
            vec![vec![ProcessorId::new(0)], vec![ProcessorId::new(1)]],
        )
        .unwrap();
        let sa = Mpcp::suspension_aware().analyze(&tasks, &partition);
        assert_eq!(sa.task_bounds[0].wcrt, Some(Time::from_us(2_600)));
    }

    #[test]
    fn oblivious_dominates_aware() {
        let (partition, tasks) = rw_fixture();
        let sa = Mpcp::suspension_aware().analyze(&tasks, &partition);
        let so = Mpcp::suspension_oblivious().analyze(&tasks, &partition);
        for (a, o) in sa.task_bounds.iter().zip(&so.task_bounds) {
            assert!(a.wcrt.unwrap() <= o.wcrt.unwrap());
        }
    }

    #[test]
    fn aware_coincides_with_lpp_on_write_only_sets() {
        let (_, partition, tasks) = fig1::platform_and_partition().unwrap();
        let sa = Mpcp::suspension_aware().analyze(&tasks, &partition);
        let lpp = crate::Lpp::new().analyze(&tasks, &partition);
        for (m, l) in sa.task_bounds.iter().zip(&lpp.task_bounds) {
            assert_eq!(m.wcrt, l.wcrt);
        }
    }

    #[test]
    fn names_tags_and_rw_support() {
        let sa = Mpcp::suspension_aware();
        let so = Mpcp::suspension_oblivious();
        assert_eq!(SchedAnalyzer::name(&sa), "MPCP-SA");
        assert_eq!(SchedAnalyzer::name(&so), "MPCP-SO");
        assert_eq!(ProtocolAnalysis::tag(&sa), 'M');
        assert_eq!(ProtocolAnalysis::tag(&so), 'O');
        assert!(ProtocolAnalysis::supports_rw(&sa));
        assert!(ProtocolAnalysis::supports_rw(&so));
        assert!(!sa.needs_resource_homes());
        assert_eq!(sa.variant(), MpcpVariant::SuspensionAware);
    }
}
